//! The CDStore server (§4): one per cloud, co-located with the storage
//! backend, performing inter-user deduplication and index/container
//! management on behalf of all clients.
//!
//! The server is built for concurrent multi-client traffic (§5.4, Figure 8):
//! every entry point takes `&self`, the indices are striped over per-shard
//! mutexes ([`cdstore_index::sharded`]), containers take per-user append
//! locks, and the traffic counters are atomics. `CdStoreServer` is
//! `Send + Sync`, so any number of client threads may upload, restore, and
//! delete against it simultaneously. Exactly-once physical storage under
//! races is guaranteed by
//! [`ShardedShareIndex::add_reference_or_store`], which holds the
//! fingerprint's stripe lock across the dedup test and the container append.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cdstore_crypto::Fingerprint;
use cdstore_index::{
    FileEntry, FileKey, FilePutOutcome, ShardedFileIndex, ShardedKvStore, ShardedShareIndex,
    ShareLocation, StoreOutcome,
};
use cdstore_storage::{
    ContainerKind, ContainerStore, MemoryBackend, StorageBackend, StorageError, StoreUtilisation,
};
use parking_lot::Mutex;

use crate::error::CdStoreError;
use crate::metadata::{FileRecipe, ShareMetadata};

/// Number of times share and recipe reads re-resolve their index entry when
/// the container they point at vanishes mid-read: an online compaction pass
/// may delete a container between a reader's index lookup and its container
/// fetch, in which case the index already points at the relocated copy and
/// one retry suffices (bounded higher for safety).
const RELOCATION_RETRIES: usize = 3;

/// Tuning knobs of a garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcConfig {
    /// Dead-byte fraction above which a sealed share container is compacted
    /// (its live shares rewritten into fresh containers). Fully dead
    /// containers are always deleted outright, whatever the threshold.
    pub dead_ratio: f64,
}

impl Default for GcConfig {
    fn default() -> Self {
        // Rewrite a container once at least half of it is garbage: below
        // that, the bytes rewritten per byte reclaimed exceed 1 and the
        // vacuum does more I/O than it saves.
        GcConfig { dead_ratio: 0.5 }
    }
}

/// What one garbage-collection pass accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Sealed containers deleted because nothing in them was live.
    pub containers_deleted: u64,
    /// Sealed share containers compacted (live shares rewritten, container
    /// deleted).
    pub containers_compacted: u64,
    /// Live shares rewritten into fresh containers during compaction.
    pub shares_rewritten: u64,
    /// Dead payload bytes reclaimed from the backend.
    pub reclaimed_bytes: u64,
    /// Live payload bytes rewritten into fresh containers.
    pub rewritten_bytes: u64,
}

impl GcReport {
    /// Folds another report into this one (aggregation across servers).
    pub fn absorb(&mut self, other: &GcReport) {
        self.containers_deleted += other.containers_deleted;
        self.containers_compacted += other.containers_compacted;
        self.shares_rewritten += other.shares_rewritten;
        self.reclaimed_bytes += other.reclaimed_bytes;
        self.rewritten_bytes += other.rewritten_bytes;
    }
}

/// Traffic and deduplication counters of one server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Share bytes received from clients (after intra-user dedup).
    pub received_share_bytes: u64,
    /// Share bytes actually written as unique shares (after inter-user dedup).
    pub physical_share_bytes: u64,
    /// Number of shares received.
    pub shares_received: u64,
    /// Number of shares that were inter-user duplicates.
    pub inter_user_duplicates: u64,
    /// Recipe bytes stored.
    pub recipe_bytes: u64,
    /// Share bytes served to clients during restores.
    pub served_share_bytes: u64,
}

/// Lock-free counterpart of [`ServerStats`].
#[derive(Default)]
struct AtomicServerStats {
    received_share_bytes: AtomicU64,
    physical_share_bytes: AtomicU64,
    shares_received: AtomicU64,
    inter_user_duplicates: AtomicU64,
    recipe_bytes: AtomicU64,
    served_share_bytes: AtomicU64,
}

impl AtomicServerStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            received_share_bytes: self.received_share_bytes.load(Ordering::Relaxed),
            physical_share_bytes: self.physical_share_bytes.load(Ordering::Relaxed),
            shares_received: self.shares_received.load(Ordering::Relaxed),
            inter_user_duplicates: self.inter_user_duplicates.load(Ordering::Relaxed),
            recipe_bytes: self.recipe_bytes.load(Ordering::Relaxed),
            served_share_bytes: self.served_share_bytes.load(Ordering::Relaxed),
        }
    }
}

/// One CDStore server. `Send + Sync`; all entry points take `&self`.
pub struct CdStoreServer {
    cloud_index: usize,
    /// Server-side fingerprint tag: inter-user deduplication never trusts the
    /// client-computed fingerprint (it re-fingerprints the share content with
    /// this tag), which defeats the ownership side-channel attack (§3.3).
    tag: Vec<u8>,
    share_index: ShardedShareIndex,
    file_index: ShardedFileIndex,
    /// `(user || client fingerprint)` → server fingerprint. Answers intra-user
    /// dedup queries and resolves recipe entries at restore time; because the
    /// key embeds the user id, a user can only ever resolve shares they own.
    user_shares: ShardedKvStore,
    containers: ContainerStore,
    stats: AtomicServerStats,
    next_version: AtomicU64,
    /// Serialises garbage-collection passes: concurrent `gc()` calls would
    /// otherwise race to copy the same containers. Client traffic never
    /// takes this lock.
    gc_lock: Mutex<()>,
}

impl CdStoreServer {
    /// Creates a server for cloud `cloud_index` with an in-memory backend.
    pub fn new(cloud_index: usize) -> Self {
        Self::with_backend(cloud_index, Arc::new(MemoryBackend::new()))
    }

    /// Creates a server over an explicit storage backend (e.g. a directory,
    /// or the backend of a simulated cloud).
    pub fn with_backend(cloud_index: usize, backend: Arc<dyn StorageBackend>) -> Self {
        CdStoreServer {
            cloud_index,
            tag: format!("cdstore-server-{cloud_index}").into_bytes(),
            share_index: ShardedShareIndex::new(),
            file_index: ShardedFileIndex::new(),
            user_shares: ShardedKvStore::new(),
            containers: ContainerStore::new(backend),
            stats: AtomicServerStats::default(),
            next_version: AtomicU64::new(1),
            gc_lock: Mutex::new(()),
        }
    }

    /// The index of the cloud this server runs in.
    pub fn cloud_index(&self) -> usize {
        self.cloud_index
    }

    /// Traffic and deduplication counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Approximate size of the server's indices in bytes (drives the EC2
    /// instance choice in the cost model, §5.6).
    pub fn index_bytes(&self) -> usize {
        self.share_index.approximate_size()
            + self.file_index.approximate_size()
            + self.user_shares.approximate_size()
    }

    /// Number of globally unique shares stored.
    pub fn unique_shares(&self) -> usize {
        self.share_index.unique_shares()
    }

    /// Cumulative physical bytes ever written for unique shares (a traffic
    /// counter: deletes do not decrease it — see
    /// [`CdStoreServer::live_share_bytes`] for the current footprint).
    pub fn physical_share_bytes(&self) -> u64 {
        self.stats.physical_share_bytes.load(Ordering::Relaxed)
    }

    /// Bytes of unique shares currently referenced by at least one file —
    /// the live footprint deletion shrinks and garbage collection reclaims.
    pub fn live_share_bytes(&self) -> u64 {
        self.share_index.physical_bytes()
    }

    fn user_share_key(user: u64, fp: &Fingerprint) -> Vec<u8> {
        let mut key = Vec::with_capacity(40);
        key.extend_from_slice(&user.to_be_bytes());
        key.extend_from_slice(fp.as_bytes());
        key
    }

    /// Answers an intra-user deduplication query: for each client-computed
    /// share fingerprint, has this user already uploaded the share to this
    /// server? (§3.3, intra-user deduplication.)
    pub fn intra_user_query(&self, user: u64, fingerprints: &[Fingerprint]) -> Vec<bool> {
        fingerprints
            .iter()
            .map(|fp| self.user_shares.contains(&Self::user_share_key(user, fp)))
            .collect()
    }

    /// Receives a batch of shares from a client and performs inter-user
    /// deduplication: the server recomputes its own fingerprint from the
    /// share content, stores only globally unique shares into containers, and
    /// records ownership (§3.3, inter-user deduplication).
    ///
    /// When two clients race on the same share content, the fingerprint's
    /// stripe lock serialises them: exactly one performs the container
    /// append, the other only gains a reference.
    ///
    /// Returns the number of bytes that were new (physically stored).
    pub fn store_shares(
        &self,
        user: u64,
        shares: &[(ShareMetadata, Vec<u8>)],
    ) -> Result<u64, CdStoreError> {
        let mut new_bytes = 0u64;
        for (meta, data) in shares {
            self.stats.shares_received.fetch_add(1, Ordering::Relaxed);
            self.stats
                .received_share_bytes
                .fetch_add(data.len() as u64, Ordering::Relaxed);
            // Server-side fingerprint: never reuse the client's.
            let server_fp = Fingerprint::tagged(&self.tag, data);
            let (_, outcome) = self
                .share_index
                .add_reference_or_store(&server_fp, user, || {
                    self.containers.store_share(user, server_fp, data)
                })
                .map_err(CdStoreError::Storage)?;
            match outcome {
                StoreOutcome::DedupInterUser => {
                    self.stats
                        .inter_user_duplicates
                        .fetch_add(1, Ordering::Relaxed);
                }
                // The user's own uploads raced past the intra-user query
                // stage; not an inter-user duplicate.
                StoreOutcome::DedupIntraUser => {}
                StoreOutcome::Stored => {
                    self.stats
                        .physical_share_bytes
                        .fetch_add(data.len() as u64, Ordering::Relaxed);
                    new_bytes += data.len() as u64;
                }
            }
            // Record the user's client-fingerprint → server-fingerprint link.
            self.user_shares.put(
                Self::user_share_key(user, &meta.fingerprint),
                server_fp.as_bytes().to_vec(),
            );
        }
        Ok(new_bytes)
    }

    /// Resolves a client-computed fingerprint to the server fingerprint of
    /// the share, through the user's ownership mapping.
    fn resolve_server_fp(&self, user: u64, client_fp: &Fingerprint) -> Option<Fingerprint> {
        let bytes = self
            .user_shares
            .get(&Self::user_share_key(user, client_fp))?;
        bytes.try_into().ok().map(Fingerprint::from_bytes)
    }

    /// Takes one reference on behalf of `user` for the share the client knows
    /// by `client_fp`. Fails if the user never uploaded the share (a recipe
    /// must only reference shares its owner holds).
    fn add_share_reference(&self, user: u64, client_fp: &Fingerprint) -> Result<(), CdStoreError> {
        let server_fp = self
            .resolve_server_fp(user, client_fp)
            .ok_or_else(|| CdStoreError::MissingShare(client_fp.to_hex()))?;
        if !self.share_index.add_reference_existing(&server_fp, user) {
            return Err(CdStoreError::MissingShare(client_fp.to_hex()));
        }
        Ok(())
    }

    /// Drops one of `user`'s references on the share the client knows by
    /// `client_fp`. When the user's last reference goes, their ownership
    /// mapping is torn down (the share can no longer be fetched or claimed
    /// as an intra-user duplicate by this user); when the *global* last
    /// reference goes, the share's container bytes are released to the
    /// liveness ledger for the garbage collector. Tolerant of already
    /// released shares, so delete paths can be replayed.
    fn release_share_reference(&self, user: u64, client_fp: &Fingerprint) {
        let Some(server_fp) = self.resolve_server_fp(user, client_fp) else {
            return;
        };
        let Some(report) = self.share_index.remove_reference(&server_fp, user) else {
            return;
        };
        if report.user_refs == 0 {
            let key = Self::user_share_key(user, client_fp);
            self.user_shares.delete(&key);
            // Repair a racing same-user re-upload: if the user re-acquired
            // references between the stripe-locked decrement above and the
            // mapping delete (a store_shares on another of their files), the
            // delete just removed a mapping that is needed again — restore
            // it. The mapping value is deterministic in the content, so
            // re-putting can never install a wrong translation.
            if self
                .share_index
                .lookup(&server_fp)
                .map(|entry| entry.owned_by(user))
                .unwrap_or(false)
            {
                self.user_shares.put(key, server_fp.as_bytes().to_vec());
            }
        }
        if report.total_refs == 0 {
            self.containers.release(&report.location);
        }
    }

    /// Reads and decodes the recipe blob at a container location.
    fn read_recipe(&self, location: &ShareLocation) -> Result<FileRecipe, CdStoreError> {
        let bytes = self.containers.fetch(location)?;
        FileRecipe::from_bytes(&bytes)
            .ok_or_else(|| CdStoreError::InconsistentMetadata("corrupt file recipe".into()))
    }

    /// Releases every share reference a recipe holds, plus the recipe blob
    /// itself (called when a superseded recipe version is retired).
    fn release_recipe(&self, user: u64, location: &ShareLocation) -> Result<(), CdStoreError> {
        let recipe = self.read_recipe(location)?;
        for entry in &recipe.entries {
            self.release_share_reference(user, &entry.share_fingerprint);
        }
        self.containers.release(location);
        Ok(())
    }

    /// Stores the file recipe, registers the file in the file index, and
    /// settles the share reference counts: every recipe entry takes one
    /// reference (resolved through the user's ownership mappings), and the
    /// per-upload references [`CdStoreServer::store_shares`] took for the
    /// shares in `uploaded` are dropped again. The reference count of a share
    /// therefore equals the number of live recipe entries pointing at it —
    /// the invariant deletion and garbage collection rely on — while never
    /// transiently touching zero for a share an upload is still committing.
    ///
    /// If this upload supersedes an older version of the file, the old
    /// version's references and recipe bytes are released; if it loses a
    /// version race (a strictly newer recipe is already in place), its own
    /// references and recipe bytes are released instead.
    pub fn put_file(
        &self,
        user: u64,
        encoded_pathname: &[u8],
        recipe: &FileRecipe,
        uploaded: &[Fingerprint],
    ) -> Result<(), CdStoreError> {
        let key = FileKey::new(user, encoded_pathname);
        // 1. One reference per recipe entry. On failure (e.g. the recipe
        // references a share a concurrent delete just released) roll back
        // completely — the references taken so far *and* the upload's
        // transient references — so a failed commit leaks nothing: the
        // upload's shares go dead and the garbage collector reclaims them.
        for (taken, entry) in recipe.entries.iter().enumerate() {
            if let Err(e) = self.add_share_reference(user, &entry.share_fingerprint) {
                for earlier in &recipe.entries[..taken] {
                    self.release_share_reference(user, &earlier.share_fingerprint);
                }
                self.release_uploads(user, uploaded);
                return Err(e);
            }
        }
        // 2. ...then drop the references the upload itself held. (This order
        // keeps freshly uploaded shares referenced at all times.)
        self.release_uploads(user, uploaded);
        // 3. Persist the recipe blob; a backend failure here also rolls the
        // per-entry references back so nothing stays live unreclaimed.
        let recipe_bytes = recipe.to_bytes();
        let recipe_fp = Fingerprint::tagged(b"recipe", key.as_bytes());
        let location = match self.containers.store_recipe(user, recipe_fp, &recipe_bytes) {
            Ok(location) => location,
            Err(e) => {
                for entry in &recipe.entries {
                    self.release_share_reference(user, &entry.share_fingerprint);
                }
                return Err(CdStoreError::Storage(e));
            }
        };
        self.stats
            .recipe_bytes
            .fetch_add(recipe_bytes.len() as u64, Ordering::Relaxed);
        // 4. Swap the index entry. The version is allocated before the index
        // stripe lock, so racing re-uploads of the same file may arrive out
        // of order; put_if_newer keeps the highest *on this server*.
        // Cross-server consistency of a file's n recipes is the caller's
        // job: `CdStore` serialises whole-file writes per (user, pathname),
        // since each server orders versions independently.
        let outcome = self.file_index.put_if_newer(
            key,
            FileEntry {
                recipe_container_id: location.container_id,
                recipe_offset: location.offset,
                recipe_size: location.size,
                file_size: recipe.file_size,
                num_secrets: recipe.num_secrets() as u64,
                version: self.next_version.fetch_add(1, Ordering::Relaxed),
            },
        );
        match outcome {
            FilePutOutcome::Written { displaced: None } => Ok(()),
            FilePutOutcome::Written {
                displaced: Some(old),
            } => self.release_recipe(user, &old.recipe_location()),
            FilePutOutcome::Stale => {
                // A strictly newer version won the race: this upload's
                // references and recipe blob are garbage on arrival.
                for entry in &recipe.entries {
                    self.release_share_reference(user, &entry.share_fingerprint);
                }
                self.containers.release(&location);
                Ok(())
            }
        }
    }

    /// Drops the transient per-upload references [`CdStoreServer::store_shares`]
    /// took for the given shares. Called by [`CdStoreServer::put_file`] when a
    /// commit settles (or rolls back), and by clients abandoning an upload
    /// whose multi-cloud commit failed part-way — without it the abandoned
    /// shares would stay referenced, and therefore unreclaimable, forever.
    pub fn release_uploads(&self, user: u64, client_fps: &[Fingerprint]) {
        for client_fp in client_fps {
            self.release_share_reference(user, client_fp);
        }
    }

    /// Whether the server knows the given file of the given user.
    pub fn has_file(&self, user: u64, encoded_pathname: &[u8]) -> bool {
        let key = FileKey::new(user, encoded_pathname);
        self.file_index.get(&key).is_some()
    }

    /// Fetches the file recipe for a user's file.
    pub fn get_recipe(
        &self,
        user: u64,
        encoded_pathname: &[u8],
    ) -> Result<FileRecipe, CdStoreError> {
        let key = FileKey::new(user, encoded_pathname);
        // An online compaction pass may delete a recipe container between
        // reading the index entry and fetching the blob (only once every
        // recipe in it is dead, i.e. this file was deleted or re-uploaded
        // concurrently); re-resolve the entry and retry.
        for _ in 0..RELOCATION_RETRIES {
            let entry = self.file_index.get(&key).ok_or_else(|| {
                CdStoreError::FileNotFound(format!("user {user} on cloud {}", self.cloud_index))
            })?;
            match self.containers.fetch(&entry.recipe_location()) {
                Ok(bytes) => {
                    return FileRecipe::from_bytes(&bytes).ok_or_else(|| {
                        CdStoreError::InconsistentMetadata("corrupt file recipe".into())
                    })
                }
                Err(StorageError::NotFound(_)) => continue,
                Err(e) => return Err(CdStoreError::Storage(e)),
            }
        }
        Err(CdStoreError::FileNotFound(format!(
            "user {user} on cloud {} (recipe vanished mid-read)",
            self.cloud_index
        )))
    }

    /// Deletes a file: removes its index entry and releases every share
    /// reference its recipe holds, tearing down the user's ownership
    /// mappings for shares they no longer reference anywhere. Shares whose
    /// global reference count hits zero become dead bytes for the garbage
    /// collector ([`CdStoreServer::gc`]) to reclaim. Returns whether the
    /// file existed.
    pub fn delete_file(&self, user: u64, encoded_pathname: &[u8]) -> Result<bool, CdStoreError> {
        let key = FileKey::new(user, encoded_pathname);
        for _ in 0..RELOCATION_RETRIES {
            // Read the recipe *before* removing the index entry: if the blob
            // is unreadable (backend error) the delete fails with the file
            // intact and retryable, instead of dropping the entry while
            // leaking every reference the unread recipe held.
            let Some(peek) = self.file_index.get(&key) else {
                return Ok(false);
            };
            let mut recipe = match self.read_recipe(&peek.recipe_location()) {
                Ok(recipe) => recipe,
                // A concurrent re-upload displaced this version and a gc
                // pass already reclaimed its dead recipe container: the
                // index now points at the live version, so re-resolve.
                Err(CdStoreError::Storage(StorageError::NotFound(_))) => continue,
                Err(e) => return Err(e),
            };
            // Commit point: whoever wins the remove owns the release (two
            // racing deletes must not release the same references twice).
            let Some(entry) = self.file_index.remove(&key) else {
                return Ok(false);
            };
            if entry.recipe_location() != peek.recipe_location() {
                // A concurrent re-upload swapped the entry between the read
                // and the remove: release the version actually removed. (Its
                // blob is still live — we now hold the only claim to it — so
                // this read cannot race a reclamation.)
                recipe = self.read_recipe(&entry.recipe_location())?;
            }
            for re in &recipe.entries {
                self.release_share_reference(user, &re.share_fingerprint);
            }
            self.containers.release(&entry.recipe_location());
            return Ok(true);
        }
        Err(CdStoreError::FileNotFound(format!(
            "user {user} on cloud {} (recipe vanished mid-delete)",
            self.cloud_index
        )))
    }

    /// Fetches one share owned by `user`, identified by the *client*
    /// fingerprint recorded in the file recipe. Ownership is enforced: a user
    /// who never uploaded the share cannot retrieve it by fingerprint alone
    /// (the proof-of-ownership side channel of §3.3).
    pub fn fetch_share(&self, user: u64, client_fp: &Fingerprint) -> Result<Vec<u8>, CdStoreError> {
        // An online compaction pass may relocate the share and delete its old
        // container between the index lookup and the container fetch; the
        // index then already points at the fresh copy, so re-resolve.
        for _ in 0..RELOCATION_RETRIES {
            let server_fp_bytes = self
                .user_shares
                .get(&Self::user_share_key(user, client_fp))
                .ok_or_else(|| CdStoreError::MissingShare(client_fp.to_hex()))?;
            let server_fp = Fingerprint::from_bytes(server_fp_bytes.try_into().map_err(|_| {
                CdStoreError::InconsistentMetadata("bad fingerprint mapping".into())
            })?);
            let entry = self
                .share_index
                .lookup(&server_fp)
                .ok_or_else(|| CdStoreError::MissingShare(client_fp.to_hex()))?;
            match self.containers.fetch(&entry.location) {
                Ok(data) => {
                    self.stats
                        .served_share_bytes
                        .fetch_add(data.len() as u64, Ordering::Relaxed);
                    return Ok(data);
                }
                Err(StorageError::NotFound(_)) => continue,
                Err(e) => return Err(CdStoreError::Storage(e)),
            }
        }
        Err(CdStoreError::MissingShare(format!(
            "{} (share vanished mid-read)",
            client_fp.to_hex()
        )))
    }

    /// Fetches a batch of shares owned by `user`.
    pub fn fetch_shares(
        &self,
        user: u64,
        client_fps: &[Fingerprint],
    ) -> Result<Vec<Vec<u8>>, CdStoreError> {
        client_fps
            .iter()
            .map(|fp| self.fetch_share(user, fp))
            .collect()
    }

    /// Seals and persists all open containers (called at the end of a backup
    /// job and before shutting down).
    pub fn flush(&self) -> Result<(), CdStoreError> {
        self.containers.flush()?;
        Ok(())
    }

    /// Bytes currently stored at this server's cloud backend.
    pub fn backend_bytes(&self) -> u64 {
        self.containers.backend_bytes().unwrap_or(0)
    }

    /// Aggregate live/dead payload bytes across this server's containers.
    pub fn container_utilisation(&self) -> StoreUtilisation {
        self.containers.utilisation()
    }

    /// Runs a garbage-collection pass with the default [`GcConfig`].
    pub fn gc(&self) -> Result<GcReport, CdStoreError> {
        self.gc_with(GcConfig::default())
    }

    /// Runs a garbage-collection pass: seals the open containers that carry
    /// dead bytes (other users' in-progress containers are left open so
    /// periodic vacuums don't fragment active backup streams), deletes
    /// sealed containers with no live bytes, and compacts sealed *share*
    /// containers whose dead ratio crosses `config.dead_ratio` by rewriting
    /// their live shares into fresh containers and atomically repointing the
    /// share index under its stripe locks. The pass runs online — concurrent
    /// backups, restores, and deletes stay correct (readers re-resolve
    /// relocated shares; writers hold references that keep their shares
    /// live) — but passes themselves are serialised on an internal lock.
    ///
    /// Recipe containers are only ever reclaimed whole: recipes relocate
    /// poorly (the file index is keyed by hashed pathnames, which cannot be
    /// recovered from a container scan), so a recipe container is deleted
    /// once every recipe in it is dead and merely waits otherwise.
    pub fn gc_with(&self, config: GcConfig) -> Result<GcReport, CdStoreError> {
        let _vacuum = self.gc_lock.lock();
        self.containers.flush_dead()?;
        let mut report = GcReport::default();
        // Containers the compaction rewrites live shares into: sealed at the
        // end of the pass so the survivors are durable before it reports.
        let mut fresh_ids = std::collections::BTreeSet::new();
        for (id, usage) in self.containers.sealed_usages() {
            if usage.live_bytes == 0 {
                self.containers.delete_container(id)?;
                report.containers_deleted += 1;
                report.reclaimed_bytes += usage.dead_bytes;
            } else if usage.kind == ContainerKind::Share && usage.dead_ratio() >= config.dead_ratio
            {
                self.compact_container(id, &mut report, &mut fresh_ids)?;
            }
        }
        for id in fresh_ids {
            self.containers.seal_open_container(id)?;
        }
        Ok(report)
    }

    /// Rewrites the live shares of one sealed container into fresh
    /// containers, repoints the index, and deletes the container.
    fn compact_container(
        &self,
        id: u64,
        report: &mut GcReport,
        fresh_ids: &mut std::collections::BTreeSet<u64>,
    ) -> Result<(), CdStoreError> {
        let container = self.containers.fetch_container(id)?;
        for entry in &container.entries {
            let old = ShareLocation {
                container_id: id,
                offset: entry.offset,
                size: entry.length,
            };
            // Container entries carry the server fingerprint; only copy
            // blobs the index still points at *in this container* (stale
            // copies of shares stored again elsewhere are dead).
            let live = match self.share_index.lookup(&entry.fingerprint) {
                Some(share) if share.location == old => share,
                _ => continue,
            };
            let data = container
                .get_at(entry.offset, entry.length)
                .ok_or_else(|| {
                    CdStoreError::InconsistentMetadata(format!(
                        "container {id} misses a live entry"
                    ))
                })?;
            let fresh = self
                .containers
                .store_share(container.user, entry.fingerprint, data)?;
            fresh_ids.insert(fresh.container_id);
            if self
                .share_index
                .relocate(&entry.fingerprint, live.location, fresh)
            {
                report.shares_rewritten += 1;
                report.rewritten_bytes += entry.length as u64;
            } else {
                // The share was released while we copied it: the fresh copy
                // is dead on arrival and the old container loses nothing.
                self.containers.release(&fresh);
            }
        }
        // Re-read the ledger: releases may have landed while copying.
        let dead = self
            .containers
            .container_usage(id)
            .map(|usage| usage.dead_bytes)
            .unwrap_or(0);
        self.containers.delete_container(id)?;
        report.containers_compacted += 1;
        report.reclaimed_bytes += dead;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(fp: Fingerprint, size: u32, seq: u64) -> ShareMetadata {
        ShareMetadata {
            fingerprint: fp,
            share_size: size,
            secret_seq: seq,
            secret_size: size * 3,
        }
    }

    fn share(data: &[u8]) -> (ShareMetadata, Vec<u8>) {
        (
            meta(Fingerprint::of(data), data.len() as u32, 0),
            data.to_vec(),
        )
    }

    /// Uploads `datas` as `user`'s shares and commits a recipe referencing
    /// each once, mirroring the client's upload protocol (intra-user query,
    /// store, put_file with the uploaded fingerprints).
    fn backup_file(
        server: &CdStoreServer,
        user: u64,
        path: &[u8],
        datas: &[Vec<u8>],
    ) -> FileRecipe {
        let shares: Vec<_> = datas.iter().map(|d| share(d)).collect();
        let fps: Vec<_> = shares.iter().map(|(m, _)| m.fingerprint).collect();
        let already = server.intra_user_query(user, &fps);
        let to_upload: Vec<_> = shares
            .iter()
            .cloned()
            .zip(already)
            .filter_map(|(s, dup)| (!dup).then_some(s))
            .collect();
        let uploaded: Vec<_> = to_upload.iter().map(|(m, _)| m.fingerprint).collect();
        server.store_shares(user, &to_upload).unwrap();
        let recipe = FileRecipe {
            file_size: datas.iter().map(|d| d.len() as u64).sum(),
            entries: shares
                .iter()
                .map(|(m, _)| crate::metadata::RecipeEntry {
                    share_fingerprint: m.fingerprint,
                    secret_size: m.secret_size,
                })
                .collect(),
        };
        server.put_file(user, path, &recipe, &uploaded).unwrap();
        recipe
    }

    #[test]
    fn inter_user_dedup_stores_one_copy() {
        let server = CdStoreServer::new(0);
        let s = share(b"identical share content");
        let new_a = server.store_shares(1, std::slice::from_ref(&s)).unwrap();
        let new_b = server.store_shares(2, std::slice::from_ref(&s)).unwrap();
        assert_eq!(new_a, s.1.len() as u64);
        assert_eq!(new_b, 0, "second user's identical share is deduplicated");
        assert_eq!(server.unique_shares(), 1);
        assert_eq!(server.stats().inter_user_duplicates, 1);
        assert_eq!(server.stats().received_share_bytes, 2 * s.1.len() as u64);
        assert_eq!(server.physical_share_bytes(), s.1.len() as u64);
    }

    #[test]
    fn same_user_duplicate_is_not_counted_as_inter_user() {
        let server = CdStoreServer::new(0);
        let s = share(b"same user twice");
        server.store_shares(1, std::slice::from_ref(&s)).unwrap();
        // A second upload by the same user (e.g. two of their devices racing
        // past the intra-user query) is an intra-user duplicate.
        let second = server.store_shares(1, std::slice::from_ref(&s)).unwrap();
        assert_eq!(second, 0);
        assert_eq!(server.stats().inter_user_duplicates, 0);
        assert_eq!(server.unique_shares(), 1);
        assert_eq!(server.physical_share_bytes(), s.1.len() as u64);
    }

    #[test]
    fn intra_user_query_reports_only_own_uploads() {
        let server = CdStoreServer::new(0);
        let s1 = share(b"first");
        let s2 = share(b"second");
        server.store_shares(1, std::slice::from_ref(&s1)).unwrap();
        server.store_shares(2, std::slice::from_ref(&s2)).unwrap();
        // User 1 owns s1 but not s2 (even though s2 is stored): the reply must
        // not leak other users' deduplication state.
        let reply = server.intra_user_query(1, &[s1.0.fingerprint, s2.0.fingerprint]);
        assert_eq!(reply, vec![true, false]);
        let reply2 = server.intra_user_query(2, &[s1.0.fingerprint, s2.0.fingerprint]);
        assert_eq!(reply2, vec![false, true]);
    }

    #[test]
    fn fetch_share_enforces_ownership() {
        let server = CdStoreServer::new(0);
        let s = share(b"sensitive share of user 1");
        server.store_shares(1, std::slice::from_ref(&s)).unwrap();
        server.flush().unwrap();
        assert_eq!(server.fetch_share(1, &s.0.fingerprint).unwrap(), s.1);
        // User 2 knows the fingerprint but never uploaded the share: denied.
        assert!(matches!(
            server.fetch_share(2, &s.0.fingerprint),
            Err(CdStoreError::MissingShare(_))
        ));
    }

    #[test]
    fn recipes_round_trip_through_containers() {
        let server = CdStoreServer::new(1);
        let datas: Vec<Vec<u8>> = (0..50u32)
            .map(|i| format!("secret share {i}").into_bytes())
            .collect();
        let recipe = backup_file(&server, 7, b"/home/u/backup.tar", &datas);
        assert!(server.has_file(7, b"/home/u/backup.tar"));
        assert!(!server.has_file(8, b"/home/u/backup.tar"));
        let fetched = server.get_recipe(7, b"/home/u/backup.tar").unwrap();
        assert_eq!(fetched, recipe);
        assert!(matches!(
            server.get_recipe(7, b"/missing"),
            Err(CdStoreError::FileNotFound(_))
        ));
    }

    #[test]
    fn recipes_may_only_reference_owned_shares() {
        let server = CdStoreServer::new(0);
        let recipe = FileRecipe {
            file_size: 999,
            entries: vec![crate::metadata::RecipeEntry {
                share_fingerprint: Fingerprint::of(b"never uploaded"),
                secret_size: 14,
            }],
        };
        assert!(matches!(
            server.put_file(7, b"/f", &recipe, &[]),
            Err(CdStoreError::MissingShare(_))
        ));
    }

    #[test]
    fn failed_put_file_rolls_back_every_reference() {
        let server = CdStoreServer::new(0);
        let good = share(b"uploaded fine");
        server.store_shares(1, std::slice::from_ref(&good)).unwrap();
        // The recipe references the uploaded share and one the user never
        // uploaded: the commit must fail without leaking the upload's
        // transient reference (the share goes dead and reclaimable).
        let recipe = FileRecipe {
            file_size: 2,
            entries: vec![
                crate::metadata::RecipeEntry {
                    share_fingerprint: good.0.fingerprint,
                    secret_size: 13,
                },
                crate::metadata::RecipeEntry {
                    share_fingerprint: Fingerprint::of(b"never uploaded"),
                    secret_size: 14,
                },
            ],
        };
        assert!(matches!(
            server.put_file(1, b"/f", &recipe, &[good.0.fingerprint]),
            Err(CdStoreError::MissingShare(_))
        ));
        assert!(!server.has_file(1, b"/f"));
        assert_eq!(server.unique_shares(), 0, "rolled back to zero references");
        assert!(server.fetch_share(1, &good.0.fingerprint).is_err());
        server.gc().unwrap();
        assert_eq!(server.backend_bytes(), 0);
    }

    #[test]
    fn newer_recipe_versions_replace_older_ones() {
        let server = CdStoreServer::new(0);
        backup_file(&server, 1, b"/f", &[b"old content".to_vec()]);
        let new = backup_file(&server, 1, b"/f", &[b"new content".to_vec()]);
        assert_eq!(server.get_recipe(1, b"/f").unwrap(), new);
        // The superseded version's share lost its only reference.
        assert!(matches!(
            server.fetch_share(1, &Fingerprint::of(b"old content")),
            Err(CdStoreError::MissingShare(_))
        ));
        assert_eq!(server.unique_shares(), 1);
    }

    #[test]
    fn delete_file_removes_the_index_entry() {
        let server = CdStoreServer::new(0);
        let recipe = FileRecipe {
            file_size: 5,
            entries: vec![],
        };
        server.put_file(1, b"/f", &recipe, &[]).unwrap();
        assert!(server.delete_file(1, b"/f").unwrap());
        assert!(!server.delete_file(1, b"/f").unwrap());
        assert!(matches!(
            server.get_recipe(1, b"/f"),
            Err(CdStoreError::FileNotFound(_))
        ));
    }

    #[test]
    fn delete_releases_references_and_ownership() {
        let server = CdStoreServer::new(0);
        let datas = vec![b"shared A".to_vec(), b"shared B".to_vec()];
        backup_file(&server, 1, b"/u1", &datas);
        backup_file(&server, 2, b"/u2", &datas);
        assert_eq!(server.unique_shares(), 2);
        let live = server.live_share_bytes();
        assert!(live > 0);

        // User 1 deletes: the shares survive on user 2's references, and
        // user 1 can no longer fetch them.
        assert!(server.delete_file(1, b"/u1").unwrap());
        assert_eq!(server.unique_shares(), 2);
        assert_eq!(server.live_share_bytes(), live);
        assert!(matches!(
            server.fetch_share(1, &Fingerprint::of(b"shared A")),
            Err(CdStoreError::MissingShare(_))
        ));
        assert_eq!(
            server
                .fetch_share(2, &Fingerprint::of(b"shared A"))
                .unwrap(),
            b"shared A"
        );

        // User 2 deletes too: the last references go and the shares die.
        assert!(server.delete_file(2, b"/u2").unwrap());
        assert_eq!(server.unique_shares(), 0);
        assert_eq!(server.live_share_bytes(), 0);
        // The cumulative traffic counter is untouched by deletion.
        assert_eq!(server.physical_share_bytes(), live);
        assert!(matches!(
            server.fetch_share(2, &Fingerprint::of(b"shared A")),
            Err(CdStoreError::MissingShare(_))
        ));
    }

    #[test]
    fn same_user_files_sharing_a_chunk_survive_one_delete() {
        let server = CdStoreServer::new(0);
        let common = b"chunk both files contain".to_vec();
        backup_file(&server, 1, b"/a", &[common.clone(), b"only in a".to_vec()]);
        backup_file(&server, 1, b"/b", &[common.clone(), b"only in b".to_vec()]);
        assert!(server.delete_file(1, b"/a").unwrap());
        // /b still owns the common chunk.
        assert_eq!(
            server.fetch_share(1, &Fingerprint::of(&common)).unwrap(),
            common
        );
        // "only in a" lost its last reference.
        assert!(matches!(
            server.fetch_share(1, &Fingerprint::of(b"only in a")),
            Err(CdStoreError::MissingShare(_))
        ));
        assert!(server.delete_file(1, b"/b").unwrap());
        assert_eq!(server.unique_shares(), 0);
    }

    #[test]
    fn gc_reclaims_fully_dead_containers() {
        let server = CdStoreServer::new(0);
        let datas: Vec<Vec<u8>> = (0..20u32).map(|i| vec![i as u8; 10_000]).collect();
        backup_file(&server, 1, b"/doomed", &datas);
        server.flush().unwrap();
        assert!(server.backend_bytes() > 0);

        assert!(server.delete_file(1, b"/doomed").unwrap());
        let report = server.gc().unwrap();
        assert!(report.containers_deleted >= 2, "share + recipe containers");
        assert_eq!(report.containers_compacted, 0);
        assert!(report.reclaimed_bytes >= 200_000);
        assert_eq!(server.backend_bytes(), 0);
        assert_eq!(server.container_utilisation(), StoreUtilisation::default());
    }

    #[test]
    fn gc_compacts_mostly_dead_share_containers() {
        let server = CdStoreServer::new(0);
        // Two files whose shares land in the same container; deleting the
        // big one leaves the container mostly dead but still live.
        let big: Vec<Vec<u8>> = (0..30u32).map(|i| vec![i as u8; 10_000]).collect();
        let small = vec![b"survivor share".to_vec()];
        backup_file(&server, 1, b"/big", &big);
        backup_file(&server, 1, b"/small", &small);
        server.flush().unwrap();
        let before = server.backend_bytes();

        assert!(server.delete_file(1, b"/big").unwrap());
        let report = server.gc().unwrap();
        assert!(report.containers_compacted >= 1);
        assert_eq!(report.shares_rewritten, 1);
        assert_eq!(report.rewritten_bytes, small[0].len() as u64);
        assert!(server.backend_bytes() < before / 4);

        // The survivor relocated but stays byte-exact.
        assert_eq!(
            server
                .fetch_share(1, &Fingerprint::of(b"survivor share"))
                .unwrap(),
            b"survivor share"
        );
        assert_eq!(server.get_recipe(1, b"/small").unwrap().num_secrets(), 1);

        // A second pass finds nothing to do.
        let idle = server.gc().unwrap();
        assert_eq!(idle.containers_compacted, 0);
        assert_eq!(idle.shares_rewritten, 0);
    }

    #[test]
    fn gc_runs_online_with_concurrent_backups_and_restores() {
        let server = CdStoreServer::new(0);
        let keep: Vec<Vec<u8>> = (0..8u32)
            .map(|i| format!("kept share {i}").into_bytes())
            .collect();
        backup_file(&server, 9, b"/kept", &keep);
        server.flush().unwrap();
        std::thread::scope(|scope| {
            for user in 1..=4u64 {
                let server = &server;
                scope.spawn(move || {
                    for round in 0..10u32 {
                        let datas: Vec<Vec<u8>> = (0..6u32)
                            .map(|i| vec![user as u8 + i as u8; 5_000])
                            .collect();
                        let path = format!("/u{user}/r{round}").into_bytes();
                        backup_file(server, user, &path, &datas);
                        assert!(server.delete_file(user, &path).unwrap());
                    }
                });
            }
            for _ in 0..2 {
                let server = &server;
                let keep = &keep;
                scope.spawn(move || {
                    for _ in 0..10 {
                        server.gc().unwrap();
                        for (i, data) in keep.iter().enumerate() {
                            let fetched = server
                                .fetch_share(9, &Fingerprint::of(data))
                                .unwrap_or_else(|e| panic!("kept share {i} lost: {e}"));
                            assert_eq!(&fetched, data);
                        }
                    }
                });
            }
        });
        // Everything but the kept file is reclaimable.
        server.gc().unwrap();
        assert_eq!(server.unique_shares(), keep.len());
        for data in &keep {
            assert_eq!(
                &server.fetch_share(9, &Fingerprint::of(data)).unwrap(),
                data
            );
        }
    }

    #[test]
    fn index_size_grows_with_stored_shares() {
        let server = CdStoreServer::new(0);
        let before = server.index_bytes();
        for i in 0..500u32 {
            let data = format!("share-{i}").into_bytes();
            server.store_shares(1, &[share(&data)]).unwrap();
        }
        assert!(server.index_bytes() > before);
        assert_eq!(server.unique_shares(), 500);
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CdStoreServer>();
    }

    #[test]
    fn racing_identical_uploads_store_the_share_exactly_once() {
        let server = CdStoreServer::new(0);
        let users = 8u64;
        let shares: Vec<_> = (0..32u32)
            .map(|i| share(format!("contended share {i}").as_bytes()))
            .collect();
        let barrier = std::sync::Barrier::new(users as usize);
        let new_bytes: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (1..=users)
                .map(|user| {
                    let server = &server;
                    let shares = &shares;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        server.store_shares(user, shares).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let unique_bytes: u64 = shares.iter().map(|(_, d)| d.len() as u64).sum();
        // Across all racing users, each share was physically stored once.
        assert_eq!(new_bytes, unique_bytes);
        assert_eq!(server.physical_share_bytes(), unique_bytes);
        assert_eq!(server.unique_shares(), shares.len());
        let stats = server.stats();
        assert_eq!(stats.shares_received, users * shares.len() as u64);
        assert_eq!(
            stats.inter_user_duplicates,
            (users - 1) * shares.len() as u64
        );
        // Every user owns every share and can fetch it back.
        for user in 1..=users {
            for (meta, data) in &shares {
                assert_eq!(&server.fetch_share(user, &meta.fingerprint).unwrap(), data);
            }
        }
    }

    #[test]
    fn concurrent_users_interleave_stores_and_fetches() {
        let server = CdStoreServer::new(0);
        std::thread::scope(|scope| {
            for user in 1..=8u64 {
                let server = &server;
                scope.spawn(move || {
                    for i in 0..20u32 {
                        let data = format!("user {user} private share {i}").into_bytes();
                        let s = share(&data);
                        server.store_shares(user, std::slice::from_ref(&s)).unwrap();
                        assert_eq!(server.fetch_share(user, &s.0.fingerprint).unwrap(), data);
                        assert_eq!(
                            server.intra_user_query(user, &[s.0.fingerprint]),
                            vec![true]
                        );
                    }
                });
            }
        });
        assert_eq!(server.unique_shares(), 8 * 20);
        assert_eq!(server.stats().inter_user_duplicates, 0);
    }

    #[test]
    fn backend_bytes_reflect_flushed_containers() {
        let server = CdStoreServer::new(0);
        server
            .store_shares(1, &[share(&vec![7u8; 100_000])])
            .unwrap();
        assert_eq!(server.backend_bytes(), 0);
        server.flush().unwrap();
        assert!(server.backend_bytes() >= 100_000);
    }
}
