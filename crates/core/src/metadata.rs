//! File and share metadata (§4.3).
//!
//! When uploading a file, a CDStore client collects *file metadata* (the
//! pathname, file size, and number of secrets) and *share metadata* per share
//! (share size, fingerprint for intra-user dedup, sequence number of the
//! input secret, and the secret size needed to strip CAONT padding on
//! decode). The client offloads all of it to the CDStore servers, which use
//! it to build their indices and the per-file *file recipes*.

use cdstore_crypto::Fingerprint;

/// Metadata the client attaches to each uploaded share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareMetadata {
    /// Client-computed fingerprint of the share content (intra-user dedup).
    pub fingerprint: Fingerprint,
    /// Size of the share in bytes.
    pub share_size: u32,
    /// Sequence number of the secret within the file.
    pub secret_seq: u64,
    /// Size of the original secret in bytes (to remove padded zeroes).
    pub secret_size: u32,
}

/// One entry of a file recipe: how to retrieve and decode one secret's share
/// on this server's cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecipeEntry {
    /// Fingerprint of this cloud's share of the secret.
    pub share_fingerprint: Fingerprint,
    /// Size of the original secret in bytes.
    pub secret_size: u32,
}

/// The complete recipe of a file as stored on one server: the ordered list of
/// share references plus summary metadata (§4.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRecipe {
    /// Logical size of the file in bytes.
    pub file_size: u64,
    /// Ordered per-secret entries.
    pub entries: Vec<RecipeEntry>,
}

impl FileRecipe {
    /// Number of secrets in the file.
    pub fn num_secrets(&self) -> usize {
        self.entries.len()
    }

    /// Serialises the recipe to bytes (the blob written to a recipe container).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * 36);
        out.extend_from_slice(&self.file_size.to_be_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_be_bytes());
        for entry in &self.entries {
            out.extend_from_slice(entry.share_fingerprint.as_bytes());
            out.extend_from_slice(&entry.secret_size.to_be_bytes());
        }
        out
    }

    /// Parses a recipe serialised by [`FileRecipe::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<FileRecipe> {
        if bytes.len() < 16 {
            return None;
        }
        let file_size = u64::from_be_bytes(bytes[0..8].try_into().ok()?);
        let count = u64::from_be_bytes(bytes[8..16].try_into().ok()?) as usize;
        if bytes.len() != 16 + count * 36 {
            return None;
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let base = 16 + i * 36;
            let fp: [u8; 32] = bytes[base..base + 32].try_into().ok()?;
            let secret_size = u32::from_be_bytes(bytes[base + 32..base + 36].try_into().ok()?);
            entries.push(RecipeEntry {
                share_fingerprint: Fingerprint::from_bytes(fp),
                secret_size,
            });
        }
        Some(FileRecipe { file_size, entries })
    }

    /// Size of the serialised recipe in bytes — the metadata overhead the
    /// cost analysis charges for (§5.6).
    pub fn serialized_size(&self) -> usize {
        16 + self.entries.len() * 36
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fp(i: u32) -> Fingerprint {
        Fingerprint::of(&i.to_be_bytes())
    }

    #[test]
    fn recipe_round_trips() {
        let recipe = FileRecipe {
            file_size: 123_456_789,
            entries: (0..100u32)
                .map(|i| RecipeEntry {
                    share_fingerprint: fp(i),
                    secret_size: 8192 - i,
                })
                .collect(),
        };
        let bytes = recipe.to_bytes();
        assert_eq!(bytes.len(), recipe.serialized_size());
        assert_eq!(FileRecipe::from_bytes(&bytes), Some(recipe));
    }

    #[test]
    fn malformed_recipes_are_rejected() {
        assert_eq!(FileRecipe::from_bytes(&[]), None);
        assert_eq!(FileRecipe::from_bytes(&[0u8; 15]), None);
        let recipe = FileRecipe {
            file_size: 1,
            entries: vec![RecipeEntry {
                share_fingerprint: fp(1),
                secret_size: 2,
            }],
        };
        let bytes = recipe.to_bytes();
        assert_eq!(FileRecipe::from_bytes(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn empty_recipe_is_valid() {
        let recipe = FileRecipe {
            file_size: 0,
            entries: vec![],
        };
        assert_eq!(FileRecipe::from_bytes(&recipe.to_bytes()), Some(recipe));
    }

    proptest! {
        #[test]
        fn recipe_round_trips_for_arbitrary_entries(
            file_size: u64,
            sizes in proptest::collection::vec(any::<u32>(), 0..50)) {
            let recipe = FileRecipe {
                file_size,
                entries: sizes.iter().enumerate().map(|(i, &s)| RecipeEntry {
                    share_fingerprint: fp(i as u32),
                    secret_size: s,
                }).collect(),
            };
            prop_assert_eq!(FileRecipe::from_bytes(&recipe.to_bytes()), Some(recipe));
        }
    }
}
