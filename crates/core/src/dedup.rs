//! Two-stage deduplication bookkeeping (§3.3, §5.4).
//!
//! The deduplication-efficiency experiments track four data quantities per
//! backup stream:
//!
//! * **logical data** — the original user data to be encoded into shares;
//! * **logical shares** — all shares before any deduplication
//!   (`≈ n/k ×` the logical data);
//! * **transferred shares** — shares actually uploaded after *intra-user*
//!   deduplication on the client;
//! * **physical shares** — shares actually stored after *inter-user*
//!   deduplication on the servers.
//!
//! The two savings metrics of Figure 6(a) follow directly:
//! `intra-user saving = 1 − transferred / logical shares` and
//! `inter-user saving = 1 − physical / transferred`.

/// Byte counters for the four data quantities of §5.4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Original user data bytes.
    pub logical_bytes: u64,
    /// All-share bytes before deduplication.
    pub logical_share_bytes: u64,
    /// Share bytes uploaded after intra-user deduplication.
    pub transferred_share_bytes: u64,
    /// Share bytes stored after inter-user deduplication.
    pub physical_share_bytes: u64,
}

impl DedupStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another set of counters into this one.
    pub fn accumulate(&mut self, other: &DedupStats) {
        self.logical_bytes += other.logical_bytes;
        self.logical_share_bytes += other.logical_share_bytes;
        self.transferred_share_bytes += other.transferred_share_bytes;
        self.physical_share_bytes += other.physical_share_bytes;
    }

    /// Intra-user deduplication saving: `1 − transferred / logical shares`.
    pub fn intra_user_saving(&self) -> f64 {
        saving(self.transferred_share_bytes, self.logical_share_bytes)
    }

    /// Inter-user deduplication saving: `1 − physical / transferred`.
    pub fn inter_user_saving(&self) -> f64 {
        saving(self.physical_share_bytes, self.transferred_share_bytes)
    }

    /// Overall saving relative to the logical shares:
    /// `1 − physical / logical shares`.
    pub fn total_saving(&self) -> f64 {
        saving(self.physical_share_bytes, self.logical_share_bytes)
    }

    /// Deduplication ratio as defined in §5.6: logical shares / physical
    /// shares (e.g. `10×`).
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_share_bytes == 0 {
            return if self.logical_share_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.logical_share_bytes as f64 / self.physical_share_bytes as f64
    }

    /// Ratio of stored physical bytes to original logical bytes (Figure 6(b)'s
    /// bottom line; e.g. 6.3% for FSL, 0.8% for VM after 16 weeks).
    pub fn physical_to_logical(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        self.physical_share_bytes as f64 / self.logical_bytes as f64
    }
}

fn saving(after: u64, before: u64) -> f64 {
    if before == 0 {
        return 0.0;
    }
    1.0 - after as f64 / before as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_are_computed_from_byte_ratios() {
        let stats = DedupStats {
            logical_bytes: 900,
            logical_share_bytes: 1200,
            transferred_share_bytes: 300,
            physical_share_bytes: 150,
        };
        assert!((stats.intra_user_saving() - 0.75).abs() < 1e-12);
        assert!((stats.inter_user_saving() - 0.5).abs() < 1e-12);
        assert!((stats.total_saving() - 0.875).abs() < 1e-12);
        assert!((stats.dedup_ratio() - 8.0).abs() < 1e-12);
        assert!((stats.physical_to_logical() - 150.0 / 900.0).abs() < 1e-12);
    }

    #[test]
    fn zero_counters_do_not_divide_by_zero() {
        let stats = DedupStats::new();
        assert_eq!(stats.intra_user_saving(), 0.0);
        assert_eq!(stats.inter_user_saving(), 0.0);
        assert_eq!(stats.dedup_ratio(), 1.0);
        assert_eq!(stats.physical_to_logical(), 0.0);
    }

    #[test]
    fn accumulate_adds_componentwise() {
        let mut a = DedupStats {
            logical_bytes: 1,
            logical_share_bytes: 2,
            transferred_share_bytes: 3,
            physical_share_bytes: 4,
        };
        let b = DedupStats {
            logical_bytes: 10,
            logical_share_bytes: 20,
            transferred_share_bytes: 30,
            physical_share_bytes: 40,
        };
        a.accumulate(&b);
        assert_eq!(a.logical_bytes, 11);
        assert_eq!(a.physical_share_bytes, 44);
    }

    #[test]
    fn everything_duplicate_means_full_saving() {
        let stats = DedupStats {
            logical_bytes: 100,
            logical_share_bytes: 133,
            transferred_share_bytes: 0,
            physical_share_bytes: 0,
        };
        assert!((stats.intra_user_saving() - 1.0).abs() < 1e-12);
        assert_eq!(stats.inter_user_saving(), 0.0);
        assert!(stats.dedup_ratio().is_infinite());
    }
}
