//! Wire formats of the durable-metadata subsystem: the journal records a
//! server appends on every index mutation, and the checkpoint snapshot that
//! periodically supersedes them.
//!
//! Records are *state-level*: each carries the absolute post-state of the
//! mutated entry (or its deletion), never a delta. Replay is therefore
//! idempotent — applying a record to a state that already contains its
//! effect is a no-op — which is what lets recovery replay the journal suffix
//! on top of a checkpoint without reasoning about exactly where the snapshot
//! cut through concurrent mutations of *different* keys. (Per-key ordering
//! is exact: records are appended under the key's stripe lock, in apply
//! order; see `cdstore_index::sharded`.)
//!
//! The framing (length prefix, CRC, torn-tail detection, segments, epochs)
//! lives one layer down in [`cdstore_storage::journal`]; this module only
//! defines the payloads.

use cdstore_crypto::Fingerprint;
use cdstore_index::{FileEntry, FileKey, ShareEntry};

/// One journaled index mutation: the absolute post-state of a single entry
/// of one of the server's three metadata structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaRecord {
    /// The share index now holds `entry` for `fp` (insert, reference-count
    /// change, or relocation — the record does not distinguish).
    ShareUpsert {
        /// Server-side share fingerprint.
        fp: Fingerprint,
        /// The entry's full post-state.
        entry: ShareEntry,
    },
    /// The share's last reference went: the index entry was deleted.
    ShareDelete {
        /// Server-side share fingerprint.
        fp: Fingerprint,
    },
    /// The file index now holds `entry` for `key`.
    FileUpsert {
        /// Hashed `(user, pathname)` key.
        key: FileKey,
        /// The entry's full post-state.
        entry: FileEntry,
    },
    /// The file was deleted from the file index.
    FileDelete {
        /// Hashed `(user, pathname)` key.
        key: FileKey,
    },
    /// The user-share ownership map now holds `value` for `key`.
    MapPut {
        /// `(user || client fingerprint)` ownership key.
        key: Vec<u8>,
        /// The server fingerprint the mapping resolves to.
        value: Vec<u8>,
    },
    /// The ownership mapping was torn down.
    MapDelete {
        /// `(user || client fingerprint)` ownership key.
        key: Vec<u8>,
    },
}

const TAG_SHARE_UPSERT: u8 = 1;
const TAG_SHARE_DELETE: u8 = 2;
const TAG_FILE_UPSERT: u8 = 3;
const TAG_FILE_DELETE: u8 = 4;
const TAG_MAP_PUT: u8 = 5;
const TAG_MAP_DELETE: u8 = 6;

impl MetaRecord {
    /// Serialises the record into a journal payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            MetaRecord::ShareUpsert { fp, entry } => {
                let body = entry.to_bytes();
                let mut out = Vec::with_capacity(33 + body.len());
                out.push(TAG_SHARE_UPSERT);
                out.extend_from_slice(fp.as_bytes());
                out.extend_from_slice(&body);
                out
            }
            MetaRecord::ShareDelete { fp } => {
                let mut out = Vec::with_capacity(33);
                out.push(TAG_SHARE_DELETE);
                out.extend_from_slice(fp.as_bytes());
                out
            }
            MetaRecord::FileUpsert { key, entry } => {
                let body = entry.to_bytes();
                let mut out = Vec::with_capacity(33 + body.len());
                out.push(TAG_FILE_UPSERT);
                out.extend_from_slice(key.as_bytes());
                out.extend_from_slice(&body);
                out
            }
            MetaRecord::FileDelete { key } => {
                let mut out = Vec::with_capacity(33);
                out.push(TAG_FILE_DELETE);
                out.extend_from_slice(key.as_bytes());
                out
            }
            MetaRecord::MapPut { key, value } => {
                let mut out = Vec::with_capacity(5 + key.len() + value.len());
                out.push(TAG_MAP_PUT);
                out.extend_from_slice(&(key.len() as u32).to_be_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(value);
                out
            }
            MetaRecord::MapDelete { key } => {
                let mut out = Vec::with_capacity(1 + key.len());
                out.push(TAG_MAP_DELETE);
                out.extend_from_slice(key);
                out
            }
        }
    }

    /// Parses a journal payload (`None` for unknown tags or malformed
    /// bodies — recovery skips such records rather than failing, so a
    /// rolled-back binary can still open a newer journal).
    pub fn decode(bytes: &[u8]) -> Option<MetaRecord> {
        let (&tag, rest) = bytes.split_first()?;
        match tag {
            TAG_SHARE_UPSERT => {
                let fp = Fingerprint::from_bytes(rest.get(..32)?.try_into().ok()?);
                let entry = ShareEntry::from_bytes(rest.get(32..)?)?;
                Some(MetaRecord::ShareUpsert { fp, entry })
            }
            TAG_SHARE_DELETE => {
                let fp = Fingerprint::from_bytes(rest.get(..32)?.try_into().ok()?);
                rest.len().eq(&32).then_some(MetaRecord::ShareDelete { fp })
            }
            TAG_FILE_UPSERT => {
                let key = FileKey::from_bytes(rest.get(..32)?.try_into().ok()?);
                let entry = FileEntry::from_bytes(rest.get(32..)?)?;
                Some(MetaRecord::FileUpsert { key, entry })
            }
            TAG_FILE_DELETE => {
                let key = FileKey::from_bytes(rest.get(..32)?.try_into().ok()?);
                rest.len().eq(&32).then_some(MetaRecord::FileDelete { key })
            }
            TAG_MAP_PUT => {
                let klen = u32::from_be_bytes(rest.get(..4)?.try_into().ok()?) as usize;
                let key = rest.get(4..4 + klen)?.to_vec();
                let value = rest.get(4 + klen..)?.to_vec();
                Some(MetaRecord::MapPut { key, value })
            }
            TAG_MAP_DELETE => Some(MetaRecord::MapDelete { key: rest.to_vec() }),
            _ => None,
        }
    }
}

/// Format version of an inline checkpoint snapshot blob (the three index
/// bodies embedded in the checkpoint itself).
const SNAPSHOT_VERSION_INLINE: u32 = 1;
/// Format version of an *external-indexes* checkpoint marker: the indexes
/// live in their own disk-resident LSM runs (flushed durable before the
/// checkpoint committed), so the blob carries no bodies.
const SNAPSHOT_VERSION_EXTERNAL: u32 = 2;

/// A full point-in-time copy of a server's metadata: the share index, the
/// file index, and the user-share ownership map. Committed periodically as a
/// checkpoint so recovery replays only the journal suffix written since.
///
/// Servers running their indexes disk-resident commit an *external* marker
/// instead ([`Snapshot::external`]): the index contents are already durable
/// in their own on-disk runs, so the checkpoint only needs to record that
/// fact — recovery then opens the runs instead of installing bodies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// The index bodies live outside the checkpoint, in disk-resident LSM
    /// runs flushed before this snapshot committed. The three body vectors
    /// are empty when set.
    pub external_indexes: bool,
    /// Every share-index entry.
    pub shares: Vec<(Fingerprint, ShareEntry)>,
    /// Every file-index entry.
    pub files: Vec<(FileKey, FileEntry)>,
    /// Every ownership mapping.
    pub mappings: Vec<(Vec<u8>, Vec<u8>)>,
}

impl Snapshot {
    /// The external-indexes marker: a checkpoint whose index bodies live in
    /// disk-resident runs instead of the blob.
    pub fn external() -> Self {
        Snapshot {
            external_indexes: true,
            ..Snapshot::default()
        }
    }

    /// Serialises the snapshot into a checkpoint blob.
    pub fn encode(&self) -> Vec<u8> {
        if self.external_indexes {
            debug_assert!(self.shares.is_empty() && self.files.is_empty());
            return SNAPSHOT_VERSION_EXTERNAL.to_be_bytes().to_vec();
        }
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_VERSION_INLINE.to_be_bytes());
        out.extend_from_slice(&(self.shares.len() as u64).to_be_bytes());
        for (fp, entry) in &self.shares {
            out.extend_from_slice(fp.as_bytes());
            let body = entry.to_bytes();
            out.extend_from_slice(&(body.len() as u32).to_be_bytes());
            out.extend_from_slice(&body);
        }
        out.extend_from_slice(&(self.files.len() as u64).to_be_bytes());
        for (key, entry) in &self.files {
            out.extend_from_slice(key.as_bytes());
            let body = entry.to_bytes();
            out.extend_from_slice(&(body.len() as u32).to_be_bytes());
            out.extend_from_slice(&body);
        }
        out.extend_from_slice(&(self.mappings.len() as u64).to_be_bytes());
        for (key, value) in &self.mappings {
            out.extend_from_slice(&(key.len() as u32).to_be_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(&(value.len() as u32).to_be_bytes());
            out.extend_from_slice(value);
        }
        out
    }

    /// Parses a checkpoint blob (`None` if malformed — the blob's integrity
    /// checksum lives one layer down, so `None` here means a format
    /// mismatch, not bit rot).
    pub fn decode(bytes: &[u8]) -> Option<Snapshot> {
        let mut cursor = Cursor(bytes);
        match cursor.u32()? {
            SNAPSHOT_VERSION_INLINE => {}
            SNAPSHOT_VERSION_EXTERNAL => {
                return cursor.0.is_empty().then(Snapshot::external);
            }
            _ => return None,
        }
        let mut snapshot = Snapshot::default();
        for _ in 0..cursor.u64()? {
            let fp = Fingerprint::from_bytes(cursor.array::<32>()?);
            let len = cursor.u32()? as usize;
            let entry = ShareEntry::from_bytes(cursor.take(len)?)?;
            snapshot.shares.push((fp, entry));
        }
        for _ in 0..cursor.u64()? {
            let key = FileKey::from_bytes(cursor.array::<32>()?);
            let len = cursor.u32()? as usize;
            let entry = FileEntry::from_bytes(cursor.take(len)?)?;
            snapshot.files.push((key, entry));
        }
        for _ in 0..cursor.u64()? {
            let klen = cursor.u32()? as usize;
            let key = cursor.take(klen)?.to_vec();
            let vlen = cursor.u32()? as usize;
            let value = cursor.take(vlen)?.to_vec();
            snapshot.mappings.push((key, value));
        }
        cursor.0.is_empty().then_some(snapshot)
    }
}

/// A bounds-checked reader over a byte slice.
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let (head, tail) = (self.0.get(..n)?, self.0.get(n..)?);
        self.0 = tail;
        Some(head)
    }

    fn array<const N: usize>(&mut self) -> Option<[u8; N]> {
        self.take(N)?.try_into().ok()
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.array::<4>()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.array::<8>()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdstore_index::ShareLocation;

    fn fp(i: u32) -> Fingerprint {
        Fingerprint::of(&i.to_be_bytes())
    }

    fn share_entry(refs: u32) -> ShareEntry {
        ShareEntry {
            location: ShareLocation {
                container_id: 9,
                offset: 128,
                size: 4096,
            },
            owners: vec![(1, refs), (7, 2)],
        }
    }

    fn file_entry(version: u64) -> FileEntry {
        FileEntry {
            user: 3,
            recipe_container_id: 4,
            recipe_offset: 8,
            recipe_size: 120,
            file_size: 1 << 20,
            num_secrets: 128,
            version,
        }
    }

    #[test]
    fn records_round_trip() {
        let records = vec![
            MetaRecord::ShareUpsert {
                fp: fp(1),
                entry: share_entry(3),
            },
            MetaRecord::ShareDelete { fp: fp(2) },
            MetaRecord::FileUpsert {
                key: FileKey::new(1, b"/a"),
                entry: file_entry(5),
            },
            MetaRecord::FileDelete {
                key: FileKey::new(2, b"/b"),
            },
            MetaRecord::MapPut {
                key: b"owner-key".to_vec(),
                value: b"server-fp".to_vec(),
            },
            MetaRecord::MapDelete {
                key: b"owner-key".to_vec(),
            },
        ];
        for record in records {
            assert_eq!(MetaRecord::decode(&record.encode()), Some(record));
        }
    }

    #[test]
    fn malformed_records_decode_to_none() {
        assert_eq!(MetaRecord::decode(&[]), None);
        assert_eq!(MetaRecord::decode(&[99, 1, 2, 3]), None, "unknown tag");
        assert_eq!(MetaRecord::decode(&[TAG_SHARE_UPSERT, 1, 2]), None);
        assert_eq!(MetaRecord::decode(&[TAG_FILE_DELETE; 20]), None);
        // A share delete with trailing garbage is rejected, not truncated.
        let mut bytes = MetaRecord::ShareDelete { fp: fp(1) }.encode();
        bytes.push(0);
        assert_eq!(MetaRecord::decode(&bytes), None);
    }

    #[test]
    fn snapshots_round_trip() {
        let snapshot = Snapshot {
            shares: vec![(fp(1), share_entry(1)), (fp(2), share_entry(9))],
            files: vec![(FileKey::new(1, b"/x"), file_entry(2))],
            mappings: vec![(vec![1; 40], vec![2; 32]), (b"k".to_vec(), b"v".to_vec())],
            ..Snapshot::default()
        };
        assert_eq!(Snapshot::decode(&snapshot.encode()), Some(snapshot));
        assert_eq!(
            Snapshot::decode(&Snapshot::default().encode()),
            Some(Snapshot::default())
        );
    }

    #[test]
    fn snapshot_decode_rejects_corruption() {
        let snapshot = Snapshot {
            shares: vec![(fp(1), share_entry(1))],
            ..Snapshot::default()
        };
        let bytes = snapshot.encode();
        // Truncations and version mismatches are rejected at every cut.
        for cut in 0..bytes.len() {
            assert!(Snapshot::decode(&bytes[..cut]).is_none(), "cut {cut}");
        }
        let mut wrong_version = bytes.clone();
        wrong_version[3] = 9;
        assert!(Snapshot::decode(&wrong_version).is_none());
        // Trailing garbage is rejected too.
        let mut trailing = bytes;
        trailing.push(0);
        assert!(Snapshot::decode(&trailing).is_none());
    }

    #[test]
    fn external_marker_round_trips() {
        let marker = Snapshot::external();
        assert!(marker.external_indexes);
        let bytes = marker.encode();
        assert_eq!(bytes.len(), 4, "marker carries no bodies");
        assert_eq!(Snapshot::decode(&bytes), Some(marker));
        // A marker with trailing bytes is rejected.
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(Snapshot::decode(&trailing), None);
        // Inline snapshots decode with the flag unset.
        let inline = Snapshot::default();
        assert!(!Snapshot::decode(&inline.encode()).unwrap().external_indexes);
    }
}
