//! The error type shared by CDStore clients, servers, and the system façade.

use core::fmt;

use cdstore_cloudsim::CloudError;
use cdstore_secretsharing::SharingError;
use cdstore_storage::StorageError;

/// Errors surfaced by CDStore operations.
#[derive(Debug)]
pub enum CdStoreError {
    /// The `(n, k)` or chunking configuration is invalid.
    InvalidConfig(String),
    /// A convergent-dispersal (CAONT-RS) error.
    Sharing(SharingError),
    /// A container / backend storage error on some server.
    Storage(StorageError),
    /// A simulated-cloud error (e.g. the cloud is unavailable).
    Cloud(CloudError),
    /// Fewer than `k` CDStore servers are reachable.
    NotEnoughClouds {
        /// Servers required (`k`).
        needed: usize,
        /// Servers reachable.
        available: usize,
    },
    /// The requested file is not known to the contacted servers.
    FileNotFound(String),
    /// A share referenced by a file recipe is missing from a server.
    MissingShare(String),
    /// The recovered data failed its integrity check on every decode subset.
    IntegrityFailure(String),
    /// Recipes fetched from different servers disagree.
    InconsistentMetadata(String),
    /// A remote transport failed: connection refused or lost, request timed
    /// out, or the peer violated the wire protocol. Carries a human-readable
    /// description; the operation may have partially executed on the server.
    Remote(String),
    /// Reading the backup source or writing the restore destination failed
    /// (streaming entry points only). Carries the I/O error's description.
    Io(String),
}

impl fmt::Display for CdStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdStoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CdStoreError::Sharing(e) => write!(f, "convergent dispersal error: {e}"),
            CdStoreError::Storage(e) => write!(f, "storage error: {e}"),
            CdStoreError::Cloud(e) => write!(f, "cloud error: {e}"),
            CdStoreError::NotEnoughClouds { needed, available } => {
                write!(
                    f,
                    "need {needed} reachable clouds, only {available} available"
                )
            }
            CdStoreError::FileNotFound(path) => write!(f, "file not found: {path}"),
            CdStoreError::MissingShare(fp) => write!(f, "missing share: {fp}"),
            CdStoreError::IntegrityFailure(msg) => write!(f, "integrity failure: {msg}"),
            CdStoreError::InconsistentMetadata(msg) => write!(f, "inconsistent metadata: {msg}"),
            CdStoreError::Remote(msg) => write!(f, "remote transport error: {msg}"),
            CdStoreError::Io(msg) => write!(f, "stream I/O error: {msg}"),
        }
    }
}

impl std::error::Error for CdStoreError {}

impl From<SharingError> for CdStoreError {
    fn from(e: SharingError) -> Self {
        CdStoreError::Sharing(e)
    }
}

impl From<StorageError> for CdStoreError {
    fn from(e: StorageError) -> Self {
        CdStoreError::Storage(e)
    }
}

impl From<CloudError> for CdStoreError {
    fn from(e: CloudError) -> Self {
        CdStoreError::Cloud(e)
    }
}

impl From<std::io::Error> for CdStoreError {
    fn from(e: std::io::Error) -> Self {
        CdStoreError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = CdStoreError::NotEnoughClouds {
            needed: 3,
            available: 2,
        };
        assert!(e.to_string().contains("need 3"));
        let e = CdStoreError::FileNotFound("/backup.tar".into());
        assert!(e.to_string().contains("/backup.tar"));
        let e: CdStoreError = SharingError::IntegrityCheckFailed.into();
        assert!(matches!(e, CdStoreError::Sharing(_)));
    }
}
