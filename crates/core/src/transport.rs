//! [`ServerTransport`]: the client ⇄ server boundary as a trait.
//!
//! The paper's architecture (§4) has CDStore clients talking to one server
//! per cloud *over a network*. This module abstracts that boundary: every
//! operation a client performs against a server — the two-stage dedup
//! queries, batched share upload/download, recipe put/get, delete, gc,
//! flush, statistics — is a method of [`ServerTransport`], and the rest of
//! the crate ([`crate::client::CdStoreClient`], [`crate::system::CdStore`])
//! is generic over it.
//!
//! Two implementations exist:
//!
//! * the **in-process path** — [`CdStoreServer`] implements the trait
//!   directly (plain function calls, as the benchmarks of PR 3–5 used), and
//! * the **remote path** — `cdstore_net::RemoteServer` speaks the
//!   length-prefixed binary TCP protocol to a `cdstore_net::NetServer`
//!   (or a `cdstore-serve` process) wrapping the same server.
//!
//! Because the two paths share this one trait, `CdStore::backup`,
//! `restore`, `delete`, and `gc` run unchanged over either, and every test
//! written against the in-process deployment is also a specification of the
//! wire behaviour.
//!
//! Transport methods all return `Result`: the in-process implementations
//! are mostly infallible, but a remote call can always fail with
//! [`CdStoreError::Remote`] (connection loss, timeout, protocol violation).

use cdstore_crypto::Fingerprint;

use crate::error::CdStoreError;
use crate::metadata::{FileRecipe, ShareMetadata};
use crate::server::{CdStoreServer, GcConfig, GcReport, ServerStats};

/// Per-share outcome of a batched share upload, as reported back to the
/// client: whether the share's bytes were physically stored or removed by
/// inter-/intra-user deduplication. This is what makes the upload RPC's
/// response self-describing — a networked client can account for dedup
/// traffic without a second stats round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareVerdict {
    /// The share was new to this server; its bytes were written.
    Stored,
    /// Another user had already stored identical content (inter-user dedup).
    DuplicateInterUser,
    /// This user had already stored identical content — e.g. two of their
    /// uploads racing past the intra-user query stage.
    DuplicateIntraUser,
}

/// The response of a batched share upload: the per-share dedup verdicts plus
/// the aggregate number of bytes that were physically new.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreReceipt {
    /// Share bytes physically written (i.e. not removed by dedup).
    pub new_bytes: u64,
    /// One verdict per uploaded share, in batch order.
    pub verdicts: Vec<ShareVerdict>,
}

/// A one-RPC snapshot of a server's observable counters, used by
/// [`crate::system::CdStore::stats`] and by benchmarks/tests that need
/// server-side numbers without reaching into the concrete type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerProbe {
    /// Traffic and deduplication counters.
    pub stats: ServerStats,
    /// Container bytes currently stored at the server's cloud backend.
    pub backend_bytes: u64,
    /// Approximate size of the server's indices in bytes.
    pub index_bytes: u64,
    /// Number of globally unique shares stored.
    pub unique_shares: u64,
    /// Bytes of unique shares currently referenced by at least one file.
    pub live_share_bytes: u64,
}

/// The full client-visible server API, as one object-safe trait.
///
/// Implementations must be `Send + Sync`: a transport handle is shared by
/// every client thread of a deployment, exactly like the in-process
/// [`CdStoreServer`] it abstracts.
pub trait ServerTransport: Send + Sync {
    /// The index of the cloud this server fronts.
    fn cloud_index(&self) -> usize;

    /// Intra-user deduplication query: for each client-computed fingerprint,
    /// has this user already uploaded the share? (§3.3.)
    fn intra_user_query(
        &self,
        user: u64,
        fingerprints: &[Fingerprint],
    ) -> Result<Vec<bool>, CdStoreError>;

    /// Uploads a batch of shares, returning per-share dedup verdicts and the
    /// number of physically new bytes.
    fn store_shares(
        &self,
        user: u64,
        shares: &[(ShareMetadata, Vec<u8>)],
    ) -> Result<StoreReceipt, CdStoreError>;

    /// Stores the file recipe and settles share reference counts (see
    /// [`CdStoreServer::put_file`]).
    fn put_file(
        &self,
        user: u64,
        encoded_pathname: &[u8],
        recipe: &FileRecipe,
        uploaded: &[Fingerprint],
    ) -> Result<(), CdStoreError>;

    /// Drops the transient per-upload references of an abandoned upload
    /// (best-effort; see [`CdStoreServer::release_uploads`]).
    fn release_uploads(&self, user: u64, fingerprints: &[Fingerprint]) -> Result<(), CdStoreError>;

    /// Whether the server knows the given file of the given user.
    fn has_file(&self, user: u64, encoded_pathname: &[u8]) -> Result<bool, CdStoreError>;

    /// Fetches the file recipe for a user's file.
    fn get_recipe(&self, user: u64, encoded_pathname: &[u8]) -> Result<FileRecipe, CdStoreError>;

    /// Deletes a file, releasing its share references. Returns whether the
    /// file existed.
    fn delete_file(&self, user: u64, encoded_pathname: &[u8]) -> Result<bool, CdStoreError>;

    /// Downloads a batch of shares owned by `user`, identified by the client
    /// fingerprints recorded in the file recipe. Remote implementations
    /// stream the shares with windowed backpressure rather than buffering
    /// the whole restore in one response.
    fn fetch_shares(
        &self,
        user: u64,
        fingerprints: &[Fingerprint],
    ) -> Result<Vec<Vec<u8>>, CdStoreError>;

    /// Seals and persists all open containers.
    fn flush(&self) -> Result<(), CdStoreError>;

    /// Runs a garbage-collection pass.
    fn gc_with(&self, config: GcConfig) -> Result<GcReport, CdStoreError>;

    /// Snapshots the server's observable counters in one round-trip.
    fn probe(&self) -> Result<ServerProbe, CdStoreError>;
}

impl ServerTransport for CdStoreServer {
    fn cloud_index(&self) -> usize {
        CdStoreServer::cloud_index(self)
    }

    fn intra_user_query(
        &self,
        user: u64,
        fingerprints: &[Fingerprint],
    ) -> Result<Vec<bool>, CdStoreError> {
        Ok(CdStoreServer::intra_user_query(self, user, fingerprints))
    }

    fn store_shares(
        &self,
        user: u64,
        shares: &[(ShareMetadata, Vec<u8>)],
    ) -> Result<StoreReceipt, CdStoreError> {
        self.store_shares_detailed(user, shares)
    }

    fn put_file(
        &self,
        user: u64,
        encoded_pathname: &[u8],
        recipe: &FileRecipe,
        uploaded: &[Fingerprint],
    ) -> Result<(), CdStoreError> {
        CdStoreServer::put_file(self, user, encoded_pathname, recipe, uploaded)
    }

    fn release_uploads(&self, user: u64, fingerprints: &[Fingerprint]) -> Result<(), CdStoreError> {
        CdStoreServer::release_uploads(self, user, fingerprints);
        Ok(())
    }

    fn has_file(&self, user: u64, encoded_pathname: &[u8]) -> Result<bool, CdStoreError> {
        Ok(CdStoreServer::has_file(self, user, encoded_pathname))
    }

    fn get_recipe(&self, user: u64, encoded_pathname: &[u8]) -> Result<FileRecipe, CdStoreError> {
        CdStoreServer::get_recipe(self, user, encoded_pathname)
    }

    fn delete_file(&self, user: u64, encoded_pathname: &[u8]) -> Result<bool, CdStoreError> {
        CdStoreServer::delete_file(self, user, encoded_pathname)
    }

    fn fetch_shares(
        &self,
        user: u64,
        fingerprints: &[Fingerprint],
    ) -> Result<Vec<Vec<u8>>, CdStoreError> {
        CdStoreServer::fetch_shares(self, user, fingerprints)
    }

    fn flush(&self) -> Result<(), CdStoreError> {
        CdStoreServer::flush(self)
    }

    fn gc_with(&self, config: GcConfig) -> Result<GcReport, CdStoreError> {
        CdStoreServer::gc_with(self, config)
    }

    fn probe(&self) -> Result<ServerProbe, CdStoreError> {
        Ok(ServerProbe {
            stats: self.stats(),
            backend_bytes: self.backend_bytes(),
            index_bytes: self.index_bytes() as u64,
            unique_shares: self.unique_shares() as u64,
            live_share_bytes: self.live_share_bytes(),
        })
    }
}

/// A shared transport handle is itself a transport: `Arc<CdStoreServer>` is
/// what `cdstore_net::NetServer` wraps, and deployments that hand the same
/// server to several components clone the `Arc` rather than the server.
impl<T: ServerTransport + ?Sized> ServerTransport for std::sync::Arc<T> {
    fn cloud_index(&self) -> usize {
        (**self).cloud_index()
    }

    fn intra_user_query(
        &self,
        user: u64,
        fingerprints: &[Fingerprint],
    ) -> Result<Vec<bool>, CdStoreError> {
        (**self).intra_user_query(user, fingerprints)
    }

    fn store_shares(
        &self,
        user: u64,
        shares: &[(ShareMetadata, Vec<u8>)],
    ) -> Result<StoreReceipt, CdStoreError> {
        (**self).store_shares(user, shares)
    }

    fn put_file(
        &self,
        user: u64,
        encoded_pathname: &[u8],
        recipe: &FileRecipe,
        uploaded: &[Fingerprint],
    ) -> Result<(), CdStoreError> {
        (**self).put_file(user, encoded_pathname, recipe, uploaded)
    }

    fn release_uploads(&self, user: u64, fingerprints: &[Fingerprint]) -> Result<(), CdStoreError> {
        (**self).release_uploads(user, fingerprints)
    }

    fn has_file(&self, user: u64, encoded_pathname: &[u8]) -> Result<bool, CdStoreError> {
        (**self).has_file(user, encoded_pathname)
    }

    fn get_recipe(&self, user: u64, encoded_pathname: &[u8]) -> Result<FileRecipe, CdStoreError> {
        (**self).get_recipe(user, encoded_pathname)
    }

    fn delete_file(&self, user: u64, encoded_pathname: &[u8]) -> Result<bool, CdStoreError> {
        (**self).delete_file(user, encoded_pathname)
    }

    fn fetch_shares(
        &self,
        user: u64,
        fingerprints: &[Fingerprint],
    ) -> Result<Vec<Vec<u8>>, CdStoreError> {
        (**self).fetch_shares(user, fingerprints)
    }

    fn flush(&self) -> Result<(), CdStoreError> {
        (**self).flush()
    }

    fn gc_with(&self, config: GcConfig) -> Result<GcReport, CdStoreError> {
        (**self).gc_with(config)
    }

    fn probe(&self) -> Result<ServerProbe, CdStoreError> {
        (**self).probe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_transport_reports_per_share_verdicts() {
        let server = CdStoreServer::new(0);
        let data = b"transport verdict share".to_vec();
        let meta = ShareMetadata {
            fingerprint: Fingerprint::of(&data),
            share_size: data.len() as u32,
            secret_seq: 0,
            secret_size: data.len() as u32 * 3,
        };
        let batch = vec![(meta.clone(), data.clone())];
        let first = ServerTransport::store_shares(&server, 1, &batch).unwrap();
        assert_eq!(first.verdicts, vec![ShareVerdict::Stored]);
        assert_eq!(first.new_bytes, data.len() as u64);
        let again = ServerTransport::store_shares(&server, 1, &batch).unwrap();
        assert_eq!(again.verdicts, vec![ShareVerdict::DuplicateIntraUser]);
        let other = ServerTransport::store_shares(&server, 2, &batch).unwrap();
        assert_eq!(other.verdicts, vec![ShareVerdict::DuplicateInterUser]);
        assert_eq!(other.new_bytes, 0);
    }

    #[test]
    fn probe_matches_direct_accessors() {
        let server = CdStoreServer::new(3);
        let probe = ServerTransport::probe(&server).unwrap();
        assert_eq!(probe.stats, server.stats());
        assert_eq!(probe.unique_shares, 0);
        assert_eq!(ServerTransport::cloud_index(&server), 3);
    }
}
