//! [`CdStore`]: the whole-system façade wiring one organisation's clients to
//! `n` CDStore servers.
//!
//! [`CdStore`] is a cheap clonable `Arc` handle: clone it into as many OS
//! threads as you like and call [`CdStore::backup`], [`CdStore::restore`],
//! and [`CdStore::delete`] concurrently — the servers behind it are
//! `Send + Sync` and internally sharded (see [`crate::server`]). This is how
//! the multi-client experiments of §5.4 (Figure 8) drive real concurrent
//! traffic.
//!
//! The façade is generic over [`ServerTransport`], defaulting to in-process
//! [`CdStoreServer`]s: `CdStore::new` builds the all-in-one deployment the
//! examples use, while [`CdStore::from_transports`] accepts any transport —
//! e.g. `cdstore_net::RemoteServer` handles speaking the TCP wire protocol
//! to servers in other processes — and runs the identical backup/restore/
//! delete/gc protocol over it.

use std::collections::{BTreeSet, HashMap};
use std::io::{Read, Write};
use std::sync::Arc;

use cdstore_chunking::{ChunkerConfig, ChunkerKind};
use cdstore_storage::{MemoryBackend, StorageBackend};
use parking_lot::{Mutex, RwLock};

use crate::client::{CdStoreClient, UploadReport};
use crate::dedup::DedupStats;
use crate::error::CdStoreError;
use crate::pipeline::PipelineConfig;
use crate::retry::RetryPolicy;
use crate::server::{CdStoreServer, GcConfig, GcReport, IndexMode, RecoveryReport, ServerStats};
use crate::transport::{ServerProbe, ServerTransport};

/// System-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct CdStoreConfig {
    /// Number of clouds (and servers).
    pub n: usize,
    /// Reconstruction threshold.
    pub k: usize,
    /// Chunking configuration used by clients.
    pub chunker: ChunkerConfig,
    /// Chunking algorithm used by clients (Rabin by default, as in the
    /// paper; [`ChunkerKind::FastCdc`] is several times faster).
    pub chunker_kind: ChunkerKind,
    /// Where each server keeps its metadata indexes (memory-resident by
    /// default; see [`IndexMode::Disk`]).
    pub index_mode: IndexMode,
    /// Bounded retry-with-backoff for transient cloud faults, applied per
    /// upload batch, per replayable façade operation, and per restore fetch
    /// (see [`crate::retry`]). [`RetryPolicy::none`] surfaces every fault
    /// immediately.
    pub retry: RetryPolicy,
}

impl CdStoreConfig {
    /// Creates a configuration with the default 8 KB average chunk size.
    pub fn new(n: usize, k: usize) -> Result<Self, CdStoreError> {
        if k == 0 || n <= k || n > 255 {
            return Err(CdStoreError::InvalidConfig(format!(
                "require 0 < k < n <= 255, got n={n}, k={k}"
            )));
        }
        Ok(CdStoreConfig {
            n,
            k,
            chunker: ChunkerConfig::default(),
            chunker_kind: ChunkerKind::Rabin,
            index_mode: IndexMode::default(),
            retry: RetryPolicy::default(),
        })
    }

    /// Sets a custom chunker configuration.
    pub fn with_chunker(mut self, chunker: ChunkerConfig) -> Self {
        self.chunker = chunker;
        self
    }

    /// Sets the chunking algorithm.
    pub fn with_chunker_kind(mut self, kind: ChunkerKind) -> Self {
        self.chunker_kind = kind;
        self
    }

    /// Runs every server with disk-resident indexes (default tuning); see
    /// [`IndexMode::Disk`].
    pub fn with_disk_index(mut self) -> Self {
        self.index_mode = IndexMode::Disk(Default::default());
        self
    }

    /// Sets an explicit [`IndexMode`] for every server.
    pub fn with_index_mode(mut self, mode: IndexMode) -> Self {
        self.index_mode = mode;
        self
    }

    /// Sets the transient-fault retry policy for clients and façade
    /// operations.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Aggregated system statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemStats {
    /// Accumulated deduplication counters across all uploads.
    pub dedup: DedupStats,
    /// Per-server traffic and deduplication counters.
    pub servers: Vec<ServerStats>,
    /// Physical bytes stored per cloud backend (after container flush).
    pub backend_bytes: Vec<u64>,
    /// Index bytes per server (drives VM sizing in the cost model).
    pub index_bytes: Vec<usize>,
    /// Number of backed-up files (across users and versions).
    pub files: usize,
}

/// Deletes a cloud missed while unavailable: `(user, encoded pathname)` per
/// cloud index, replayed on recovery.
type PendingDeletes = HashMap<usize, Vec<(u64, Vec<u8>)>>;

/// The state shared by every clone of a [`CdStore`] handle.
struct Shared<T: ServerTransport> {
    config: CdStoreConfig,
    /// The servers themselves are `Send + Sync` with `&self` entry points;
    /// the `RwLock` only exists so [`CdStore::replace_and_repair_cloud`] can
    /// swap a lost server for a fresh one. All normal traffic takes the read
    /// lock and proceeds fully concurrently.
    servers: RwLock<Vec<T>>,
    available: RwLock<Vec<bool>>,
    dedup: Mutex<DedupStats>,
    /// Catalogue of `(user, pathname)` pairs ever backed up, used by repair
    /// and statistics. (In a deployment this information lives in the file
    /// indices; the façade keeps a copy for convenience.)
    catalog: Mutex<BTreeSet<(u64, String)>>,
    /// Striped per-file locks keyed by `(user, pathname)`. Each server
    /// orders recipe versions with its own counter, so two concurrent writes
    /// of the *same* file could otherwise commit in opposite orders on
    /// different clouds, leaving the n per-cloud recipes mixed between two
    /// uploads — and a concurrent restore could fetch recipes from two
    /// different uploads. Writers (backup, delete) take the write side,
    /// restores the read side; traffic on different files stays fully
    /// concurrent.
    path_locks: Vec<RwLock<()>>,
    /// Deletes that could not reach an unavailable cloud, per cloud index:
    /// `(user, that cloud's encoded pathname)`. Replayed when the cloud
    /// recovers, so a failed cloud does not come back holding orphaned
    /// index entries and share references for files deleted in its absence.
    pending_deletes: Mutex<PendingDeletes>,
}

/// Number of path-lock stripes (distinct files rarely collide at 64).
const PATH_LOCK_STRIPES: usize = 64;

/// The CDStore system: `n` servers plus per-user clients, with failure
/// injection and repair.
///
/// Cloning a `CdStore` yields another handle to the same deployment; hand
/// one clone to each client thread for concurrent multi-client traffic.
///
/// The type parameter is the [`ServerTransport`] the deployment speaks —
/// in-process [`CdStoreServer`]s by default, or e.g. remote TCP handles via
/// [`CdStore::from_transports`].
pub struct CdStore<T: ServerTransport = CdStoreServer> {
    shared: Arc<Shared<T>>,
}

// Manual impl: `derive(Clone)` would needlessly require `T: Clone`.
impl<T: ServerTransport> Clone for CdStore<T> {
    fn clone(&self) -> Self {
        CdStore {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl CdStore {
    /// Creates a CDStore deployment with `n` in-memory servers (index
    /// residency per `config.index_mode`).
    pub fn new(config: CdStoreConfig) -> Self {
        let servers = (0..config.n)
            .map(|i| {
                CdStoreServer::with_backend_and_index(
                    i,
                    Arc::new(MemoryBackend::new()),
                    config.index_mode,
                )
                .expect("fresh in-memory backends cannot fail")
            })
            .collect();
        Self::from_parts(config, servers)
    }

    /// Creates a CDStore deployment over explicit per-cloud storage backends
    /// (one per cloud), starting from empty state. To *recover* a deployment
    /// from backends holding a previous incarnation's state, use
    /// [`CdStore::open`] instead.
    pub fn with_backends(
        config: CdStoreConfig,
        backends: Vec<Arc<dyn StorageBackend>>,
    ) -> Result<Self, CdStoreError> {
        Self::check_backend_count(&config, &backends)?;
        let servers = backends
            .into_iter()
            .enumerate()
            .map(|(i, backend)| {
                CdStoreServer::with_backend_and_index(i, backend, config.index_mode)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_parts(config, servers))
    }

    /// Recovers a whole deployment from backend-only state: every server is
    /// rebuilt through [`CdStoreServer::open`] (checkpoint load, journal
    /// replay, container-scan verification), and every previously backed-up
    /// file restores byte-identically afterwards. Returns the per-server
    /// recovery reports alongside the deployment.
    ///
    /// The façade's own conveniences are *not* recoverable and start empty:
    /// the `(user, pathname)` catalog behind [`CdStore::stats`]'s file count
    /// and [`CdStore::replace_and_repair_cloud`] caches plaintext pathnames,
    /// which the servers only ever see hashed, and the pending-delete queue
    /// for unavailable clouds is in-memory only — a delete that could not
    /// reach a failed cloud before the crash leaves that cloud's entry
    /// orphaned until the delete is re-issued (deletes are replay-tolerant,
    /// so simply re-deleting the pathname clears the orphan). Restores,
    /// deletes, and new backups are otherwise unaffected (clients re-derive
    /// every key from the pathname).
    pub fn open(
        config: CdStoreConfig,
        backends: Vec<Arc<dyn StorageBackend>>,
    ) -> Result<(Self, Vec<RecoveryReport>), CdStoreError> {
        Self::check_backend_count(&config, &backends)?;
        let mut servers = Vec::with_capacity(config.n);
        let mut reports = Vec::with_capacity(config.n);
        for (i, backend) in backends.into_iter().enumerate() {
            let (server, report) = Self::reopen_server(&config, i, backend)?;
            servers.push(server);
            reports.push(report);
        }
        Ok((Self::from_parts(config, servers), reports))
    }

    /// Opens one server, honouring an explicit disk-index tuning from the
    /// config (a memory-mode config defers to [`CdStoreServer::open`]'s
    /// auto-detection, so memory-configured deployments still recover
    /// backends persisted in disk mode).
    fn reopen_server(
        config: &CdStoreConfig,
        i: usize,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<(CdStoreServer, RecoveryReport), CdStoreError> {
        match config.index_mode {
            IndexMode::Memory => CdStoreServer::open(i, backend),
            mode @ IndexMode::Disk(_) => CdStoreServer::open_with_index(i, backend, mode),
        }
    }

    fn check_backend_count(
        config: &CdStoreConfig,
        backends: &[Arc<dyn StorageBackend>],
    ) -> Result<(), CdStoreError> {
        if backends.len() != config.n {
            return Err(CdStoreError::InvalidConfig(format!(
                "expected {} backends (one per cloud), got {}",
                config.n,
                backends.len()
            )));
        }
        Ok(())
    }

    /// Restarts server `i` in place: seals its open containers, discards the
    /// in-memory instance wholesale, and rebuilds it from backend-only state
    /// through the full recovery path ([`CdStoreServer::open`]: checkpoint
    /// load, journal-suffix replay, container-scan verification). Client
    /// traffic blocks for the duration and resumes against the recovered
    /// instance.
    ///
    /// The seal step makes this a *graceful* restart — no buffered data is
    /// lost. Crash-style recovery, where unflushed buffers are torn away, is
    /// exercised by dropping the deployment and [`CdStore::open`]ing a new
    /// one from the same backends.
    pub fn restart_server(&self, i: usize) -> Result<RecoveryReport, CdStoreError> {
        let mut servers = self.shared.servers.write();
        servers[i].flush()?;
        let backend = servers[i].backend();
        let (server, report) = Self::reopen_server(&self.shared.config, i, backend)?;
        servers[i] = server;
        Ok(report)
    }

    /// Replaces cloud `i` with a brand-new empty server (permanent loss) and
    /// rebuilds every lost share on it from the surviving `k` clouds, as in
    /// Reed-Solomon repair (§3.1). Returns the number of files repaired.
    ///
    /// Repair is an administrative operation: run it while client traffic is
    /// quiesced, as files backed up concurrently with the repair pass may be
    /// missed.
    pub fn replace_and_repair_cloud(&self, i: usize) -> Result<usize, CdStoreError> {
        self.shared.servers.write()[i] = CdStoreServer::with_backend_and_index(
            i,
            Arc::new(MemoryBackend::new()),
            self.shared.config.index_mode,
        )?;
        self.shared.available.write()[i] = true;
        // The replacement server starts empty: deletes that were pending for
        // the lost cloud have nothing left to delete (repair re-uploads only
        // catalogued — i.e. not deleted — files).
        self.shared.pending_deletes.lock().remove(&i);
        let catalog: Vec<(u64, String)> = self.shared.catalog.lock().iter().cloned().collect();
        let mut repaired = 0usize;
        for (user, pathname) in catalog {
            // Restore from the surviving clouds...
            let client = self.client(user)?;
            let mut availability = self.shared.available.read().clone();
            availability[i] = false;
            let servers = self.shared.servers.read();
            let data = client.download(&servers, &availability, &pathname)?;
            // ...and re-upload, which regenerates the identical convergent
            // shares and repopulates cloud i (the other clouds deduplicate the
            // re-uploaded shares away).
            client.upload(&servers, &pathname, &data)?;
            repaired += 1;
        }
        Ok(repaired)
    }
}

impl<T: ServerTransport> CdStore<T> {
    /// Creates a deployment over explicit transports, one per cloud — the
    /// entry point for networked deployments, where each transport is a
    /// remote handle to a server in another process:
    ///
    /// ```ignore
    /// let transports: Vec<RemoteServer> = addrs.iter().map(...).collect();
    /// let store = CdStore::from_transports(config, transports)?;
    /// store.backup(user, "/docs.tar", &data)?;   // over TCP
    /// ```
    pub fn from_transports(
        config: CdStoreConfig,
        transports: Vec<T>,
    ) -> Result<Self, CdStoreError> {
        if transports.len() != config.n {
            return Err(CdStoreError::InvalidConfig(format!(
                "expected {} transports (one per cloud), got {}",
                config.n,
                transports.len()
            )));
        }
        Ok(Self::from_parts(config, transports))
    }

    fn from_parts(config: CdStoreConfig, servers: Vec<T>) -> Self {
        CdStore {
            shared: Arc::new(Shared {
                servers: RwLock::new(servers),
                available: RwLock::new(vec![true; config.n]),
                dedup: Mutex::new(DedupStats::new()),
                catalog: Mutex::new(BTreeSet::new()),
                path_locks: (0..PATH_LOCK_STRIPES).map(|_| RwLock::new(())).collect(),
                pending_deletes: Mutex::new(HashMap::new()),
                config,
            }),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> CdStoreConfig {
        self.shared.config
    }

    /// Builds a client handle for a user.
    pub fn client(&self, user: u64) -> Result<CdStoreClient, CdStoreError> {
        let config = &self.shared.config;
        Ok(CdStoreClient::with_chunker_kind(
            user,
            config.n,
            config.k,
            config.chunker_kind,
            config.chunker,
        )?
        .with_retry_policy(config.retry))
    }

    /// The lock covering one `(user, pathname)` file.
    fn path_lock(&self, user: u64, pathname: &str) -> &RwLock<()> {
        let hash =
            cdstore_index::sharded::fnv1a(pathname.as_bytes()) ^ user.wrapping_mul(0x9e37_79b9);
        &self.shared.path_locks[(hash % PATH_LOCK_STRIPES as u64) as usize]
    }

    /// Backs up a file for a user. Thin wrapper over
    /// [`CdStore::backup_stream`] — a slice is one shape of `Read` source —
    /// with whole-operation retry on transient faults: a slice source is
    /// replayable and a failed upload rolls back to a replay-safe state, so
    /// this also rides out transient faults that escape the per-batch retry
    /// (e.g. during the metadata offload). Generic-reader callers use
    /// [`CdStore::backup_stream`] directly, which only retries per batch —
    /// an arbitrary `Read` source cannot be rewound.
    pub fn backup(
        &self,
        user: u64,
        pathname: &str,
        data: &[u8],
    ) -> Result<UploadReport, CdStoreError> {
        self.shared
            .config
            .retry
            .run(|_| self.backup_stream(user, pathname, data))
    }

    /// Backs up a file pulled incrementally from `reader` through the
    /// streaming data path: chunks are cut as bytes arrive, encoded by the
    /// bounded staged pipeline, and shipped to the clouds in 4 MB batches
    /// while later chunks are still being encoded. Peak memory is set by the
    /// pipeline depth and batch size, not the file size — files larger than
    /// RAM stream through.
    pub fn backup_stream<R: Read + Send>(
        &self,
        user: u64,
        pathname: &str,
        reader: R,
    ) -> Result<UploadReport, CdStoreError> {
        self.ensure_all_clouds_up()?;
        let client = self.client(user)?;
        // The streaming upload interleaves encoding with server traffic, so
        // the whole upload runs under the per-file write lock (unrelated
        // files stay concurrent via the lock striping).
        let _file = self.path_lock(user, pathname).write();
        let servers = self.shared.servers.read();
        let report =
            client.upload_stream(&servers, pathname, reader, &PipelineConfig::default())?;
        drop(servers);
        self.shared.dedup.lock().accumulate(&report.dedup);
        self.shared
            .catalog
            .lock()
            .insert((user, pathname.to_string()));
        Ok(report)
    }

    /// Backs up a file already divided into chunks (trace-driven workloads).
    ///
    /// Keeps the two-phase buffered path: the CPU-bound prepare (CAONT-RS
    /// encoding) runs *outside* any lock so unrelated trace replays never
    /// serialise their encoding, then the server commit runs under the
    /// per-file write lock.
    pub fn backup_chunks(
        &self,
        user: u64,
        pathname: &str,
        chunks: &[Vec<u8>],
    ) -> Result<UploadReport, CdStoreError> {
        self.ensure_all_clouds_up()?;
        let client = self.client(user)?;
        // Whole-operation retry on transient faults (pre-chunked input is
        // replayable; a failed commit rolls back to a replay-safe state).
        // Each attempt re-encodes outside the lock and re-commits under it.
        let report = self.shared.config.retry.run(|_| {
            let prepared = client.prepare_chunks(chunks)?;
            let _file = self.path_lock(user, pathname).write();
            let servers = self.shared.servers.read();
            client.commit(&servers, pathname, prepared)
        })?;
        self.shared.dedup.lock().accumulate(&report.dedup);
        self.shared
            .catalog
            .lock()
            .insert((user, pathname.to_string()));
        Ok(report)
    }

    /// Restores a file for a user from any `k` available clouds. Thin
    /// wrapper over [`CdStore::restore_stream`] collecting into a `Vec<u8>`.
    pub fn restore(&self, user: u64, pathname: &str) -> Result<Vec<u8>, CdStoreError> {
        let mut out = Vec::new();
        self.restore_stream(user, pathname, &mut out)?;
        Ok(out)
    }

    /// Restores a file into any [`Write`] destination, fetching shares in
    /// bounded windows so the whole file is never buffered. Returns the
    /// number of bytes written.
    pub fn restore_stream<W: Write + ?Sized>(
        &self,
        user: u64,
        pathname: &str,
        out: &mut W,
    ) -> Result<u64, CdStoreError> {
        let client = self.client(user)?;
        // Read side of the per-file lock: a restore never observes a
        // half-committed rewrite of the same file (mixed per-cloud recipes),
        // while restores of the same file still run concurrently.
        let _file = self.path_lock(user, pathname).read();
        let availability = self.shared.available.read().clone();
        let servers = self.shared.servers.read();
        client.download_stream(&servers, &availability, pathname, out)
    }

    /// Deletes a file on all available servers, releasing its share
    /// references so the garbage collector ([`CdStore::gc`]) can reclaim the
    /// freed container space. Deletes aimed at unavailable clouds are
    /// recorded and replayed when the cloud recovers
    /// ([`CdStore::recover_cloud`]), so no orphaned index entries survive a
    /// failover.
    pub fn delete(&self, user: u64, pathname: &str) -> Result<bool, CdStoreError> {
        let client = self.client(user)?;
        let encoded = client.encode_pathname(pathname)?;
        let _file = self.path_lock(user, pathname).write();
        let availability = self.shared.available.read().clone();
        let servers = self.shared.servers.read();
        let mut any = false;
        let mut first_err = None;
        for (i, server) in servers.iter().enumerate() {
            if availability[i] {
                // Best-effort across clouds: a failure on one cloud must not
                // leave later clouds untouched with nothing recorded. The
                // server-side delete fails *before* mutating anything, so it
                // is replay-safe: transient faults are retried in place, and
                // the first persistent error is reported after every cloud
                // was attempted.
                match self
                    .shared
                    .config
                    .retry
                    .run(|_| server.delete_file(user, &encoded[i]))
                {
                    Ok(deleted) => any |= deleted,
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            } else {
                // Enqueue under the pending-deletes lock and re-check the
                // availability flag beneath it: `recover_cloud` replays and
                // flips the flag under the same lock, so either this delete
                // lands in the queue before the drain, or it observes the
                // recovery and executes directly — never a stranded orphan.
                let mut pending = self.shared.pending_deletes.lock();
                if self.shared.available.read()[i] {
                    match server.delete_file(user, &encoded[i]) {
                        Ok(deleted) => any |= deleted,
                        Err(e) => first_err = first_err.or(Some(e)),
                    }
                } else {
                    pending
                        .entry(i)
                        .or_default()
                        .push((user, encoded[i].clone()));
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        self.shared
            .catalog
            .lock()
            .remove(&(user, pathname.to_string()));
        Ok(any)
    }

    /// Injects a failure of cloud `i` (its server becomes unreachable).
    pub fn fail_cloud(&self, i: usize) {
        self.shared.available.write()[i] = false;
    }

    /// Marks cloud `i` reachable again, after replaying the deletes it
    /// missed while unavailable.
    ///
    /// The replay runs *before* the availability flip, both under the
    /// pending-deletes lock: new backups therefore only see the cloud as
    /// available once every stale delete has executed (a replayed delete can
    /// never destroy a file re-created after recovery), and a concurrent
    /// `delete` either enqueues before the drain or observes the flipped
    /// flag and deletes directly. (As in the paper's prototype, recovery is
    /// an administrative action: quiesce backups that were already mid-
    /// commit when the cloud originally failed.)
    pub fn recover_cloud(&self, i: usize) {
        // Lock order servers → pending → available, matching `delete`'s
        // in-loop order, so a writer queued on the servers lock can never
        // wedge the two against each other.
        let servers = self.shared.servers.read();
        let mut pending_map = self.shared.pending_deletes.lock();
        let pending = pending_map.remove(&i).unwrap_or_default();
        let mut failed = Vec::new();
        for (user, encoded_pathname) in pending {
            // A replayed delete finding nothing is fine (the file was
            // re-uploaded and re-deleted, or never reached this cloud), but
            // one that *errors* (delete_file fails before mutating anything)
            // must stay queued — dropping it would orphan the entry forever.
            // Calling recover_cloud again retries the stragglers.
            if servers[i].delete_file(user, &encoded_pathname).is_err() {
                failed.push((user, encoded_pathname));
            }
        }
        if !failed.is_empty() {
            pending_map.entry(i).or_default().extend(failed);
        }
        self.shared.available.write()[i] = true;
    }

    /// Whether cloud `i` is currently reachable.
    pub fn is_cloud_available(&self, i: usize) -> bool {
        self.shared.available.read()[i]
    }

    /// Seals open containers on every server. A transient fault while a
    /// container seals is retried (a failed seal reinstates the builder, so
    /// the replay writes the identical container).
    pub fn flush(&self) -> Result<(), CdStoreError> {
        for server in self.shared.servers.read().iter() {
            self.shared.config.retry.run(|_| server.flush())?;
        }
        Ok(())
    }

    /// Runs a garbage-collection pass on every *available* server with the
    /// default [`GcConfig`], returning the aggregated report. See
    /// [`CdStoreServer::gc_with`] for what a pass does; it is safe to call
    /// concurrently with backups, restores, and deletes.
    pub fn gc(&self) -> Result<GcReport, CdStoreError> {
        self.gc_with(GcConfig::default())
    }

    /// Runs a garbage-collection pass on every available server with an
    /// explicit configuration. Unavailable clouds are skipped (their space
    /// is reclaimed by the first pass after they recover).
    pub fn gc_with(&self, config: GcConfig) -> Result<GcReport, CdStoreError> {
        let availability = self.shared.available.read().clone();
        let servers = self.shared.servers.read();
        let mut total = GcReport::default();
        for (i, server) in servers.iter().enumerate() {
            if availability[i] {
                total.absorb(&server.gc_with(config)?);
            }
        }
        Ok(total)
    }

    /// Aggregated system statistics. Server-side numbers come from one
    /// [`ServerTransport::probe`] per server; a server that cannot be probed
    /// (e.g. an unreachable remote) contributes zeroed counters rather than
    /// failing the whole snapshot.
    pub fn stats(&self) -> SystemStats {
        let servers = self.shared.servers.read();
        let probes: Vec<ServerProbe> = servers
            .iter()
            .map(|s| s.probe().unwrap_or_default())
            .collect();
        SystemStats {
            dedup: *self.shared.dedup.lock(),
            servers: probes.iter().map(|p| p.stats).collect(),
            backend_bytes: probes.iter().map(|p| p.backend_bytes).collect(),
            index_bytes: probes.iter().map(|p| p.index_bytes as usize).collect(),
            files: self.shared.catalog.lock().len(),
        }
    }

    /// Runs a closure against the server (transport) slice — used by
    /// benchmarks and tests that drive [`CdStoreClient`]s explicitly.
    pub fn with_servers<R>(&self, f: impl FnOnce(&[T]) -> R) -> R {
        f(&self.shared.servers.read())
    }

    fn ensure_all_clouds_up(&self) -> Result<(), CdStoreError> {
        let available = self.shared.available.read();
        let up = available.iter().filter(|&&a| a).count();
        if up < self.shared.config.n {
            // Uploads write to all n clouds so redundancy is never silently
            // degraded; the paper's prototype behaves the same way.
            return Err(CdStoreError::NotEnoughClouds {
                needed: self.shared.config.n,
                available: up,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| ((i / 700) as u8).wrapping_mul(17).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn backup_restore_delete_lifecycle() {
        let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
        let data = sample(250_000, 1);
        let report = store.backup(7, "/docs.tar", &data).unwrap();
        assert_eq!(report.dedup.logical_bytes, data.len() as u64);
        assert_eq!(store.stats().files, 1);
        assert_eq!(store.restore(7, "/docs.tar").unwrap(), data);
        assert!(store.delete(7, "/docs.tar").unwrap());
        assert!(store.restore(7, "/docs.tar").is_err());
        assert_eq!(store.stats().files, 0);
    }

    #[test]
    fn tolerates_cloud_failures_up_to_n_minus_k() {
        let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
        let data = sample(100_000, 2);
        store.backup(1, "/f", &data).unwrap();
        store.fail_cloud(0);
        assert!(!store.is_cloud_available(0));
        assert_eq!(store.restore(1, "/f").unwrap(), data);
        // Backups require all clouds.
        assert!(matches!(
            store.backup(1, "/g", &data),
            Err(CdStoreError::NotEnoughClouds { .. })
        ));
        store.fail_cloud(1);
        assert!(matches!(
            store.restore(1, "/f"),
            Err(CdStoreError::NotEnoughClouds { .. })
        ));
        store.recover_cloud(0);
        store.recover_cloud(1);
        assert_eq!(store.restore(1, "/f").unwrap(), data);
    }

    #[test]
    fn repair_rebuilds_a_lost_cloud() {
        let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
        let data_a = sample(180_000, 3);
        let data_b = sample(90_000, 4);
        store.backup(1, "/a", &data_a).unwrap();
        store.backup(2, "/b", &data_b).unwrap();
        let physical_before: u64 = store
            .stats()
            .servers
            .iter()
            .map(|s| s.physical_share_bytes)
            .sum();

        // Cloud 2 is lost permanently and replaced by an empty one.
        let repaired = store.replace_and_repair_cloud(2).unwrap();
        assert_eq!(repaired, 2);
        // All data is still restorable even if another cloud now fails.
        store.fail_cloud(0);
        assert_eq!(store.restore(1, "/a").unwrap(), data_a);
        assert_eq!(store.restore(2, "/b").unwrap(), data_b);
        // Repair regenerated roughly the lost quarter of the physical data,
        // not a full re-store (convergent shares deduplicate on survivors).
        let physical_after: u64 = store
            .stats()
            .servers
            .iter()
            .map(|s| s.physical_share_bytes)
            .sum();
        assert!(physical_after >= physical_before);
        assert!(physical_after < physical_before * 2);
    }

    #[test]
    fn stats_aggregate_across_users_and_uploads() {
        let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
        let data = sample(150_000, 5);
        store.backup(1, "/u1", &data).unwrap();
        store.backup(2, "/u2", &data).unwrap();
        store.flush().unwrap();
        let stats = store.stats();
        assert_eq!(stats.files, 2);
        assert_eq!(stats.dedup.logical_bytes, 2 * data.len() as u64);
        // Inter-user dedup: physical is roughly half of transferred.
        assert!(stats.dedup.inter_user_saving() > 0.45);
        assert_eq!(stats.servers.len(), 4);
        assert!(stats.backend_bytes.iter().all(|&b| b > 0));
        assert!(stats.index_bytes.iter().all(|&b| b > 0));
    }

    #[test]
    fn cdstore_handles_are_clonable_and_send_sync() {
        fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
        assert_send_sync_clone::<CdStore>();
        let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
        let clone = store.clone();
        let data = sample(60_000, 9);
        store.backup(1, "/via-original", &data).unwrap();
        // Both handles see the same deployment.
        assert_eq!(clone.restore(1, "/via-original").unwrap(), data);
        assert_eq!(clone.stats().files, 1);
    }

    #[test]
    fn concurrent_clients_back_up_and_restore_through_clones() {
        let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
        std::thread::scope(|scope| {
            for user in 1..=8u64 {
                let store = store.clone();
                scope.spawn(move || {
                    let data = sample(120_000, user as u8);
                    let path = format!("/u{user}/data.tar");
                    store.backup(user, &path, &data).unwrap();
                    assert_eq!(store.restore(user, &path).unwrap(), data);
                });
            }
        });
        assert_eq!(store.stats().files, 8);
    }

    #[test]
    fn gc_reclaims_deleted_files_across_servers() {
        let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
        let doomed = sample(400_000, 11);
        let kept = sample(150_000, 12);
        store.backup(1, "/doomed", &doomed).unwrap();
        store.backup(1, "/kept", &kept).unwrap();
        store.flush().unwrap();
        let before: u64 = store.stats().backend_bytes.iter().sum();
        assert!(before > 0);

        assert!(store.delete(1, "/doomed").unwrap());
        let report = store.gc().unwrap();
        assert!(report.reclaimed_bytes > 0);
        let after: u64 = store.stats().backend_bytes.iter().sum();
        assert!(after < before, "gc must shrink the backends");
        // The survivor is still byte-exact, even where compaction moved it.
        assert_eq!(store.restore(1, "/kept").unwrap(), kept);

        // Deleting the survivor too empties the backends entirely.
        assert!(store.delete(1, "/kept").unwrap());
        store.gc().unwrap();
        assert_eq!(store.stats().backend_bytes.iter().sum::<u64>(), 0);
    }

    #[test]
    fn pending_deletes_replay_when_a_cloud_recovers() {
        let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
        let data = sample(120_000, 13);
        store.backup(5, "/ephemeral", &data).unwrap();
        store.flush().unwrap();

        // Cloud 0 is down when the delete happens.
        store.fail_cloud(0);
        assert!(store.delete(5, "/ephemeral").unwrap());
        assert!(store.restore(5, "/ephemeral").is_err());

        // Before recovery, server 0 still holds the orphaned file.
        let encoded = store
            .client(5)
            .unwrap()
            .encode_pathname("/ephemeral")
            .unwrap();
        store.with_servers(|servers| {
            assert!(servers[0].has_file(5, &encoded[0]));
        });

        // Recovery replays the delete: the orphan is gone and gc can now
        // reclaim every backend, including cloud 0's.
        store.recover_cloud(0);
        store.with_servers(|servers| {
            assert!(!servers[0].has_file(5, &encoded[0]));
            assert_eq!(servers[0].unique_shares(), 0);
        });
        store.gc().unwrap();
        assert_eq!(store.stats().backend_bytes.iter().sum::<u64>(), 0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(CdStoreConfig::new(3, 3).is_err());
        assert!(CdStoreConfig::new(0, 0).is_err());
        assert!(CdStoreConfig::new(4, 3).is_ok());
    }
}
