//! [`CdStore`]: the whole-system façade wiring one organisation's clients to
//! `n` in-process CDStore servers.

use std::collections::BTreeSet;

use cdstore_chunking::ChunkerConfig;

use crate::client::{CdStoreClient, UploadReport};
use crate::dedup::DedupStats;
use crate::error::CdStoreError;
use crate::server::{CdStoreServer, ServerStats};

/// System-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct CdStoreConfig {
    /// Number of clouds (and servers).
    pub n: usize,
    /// Reconstruction threshold.
    pub k: usize,
    /// Chunking configuration used by clients.
    pub chunker: ChunkerConfig,
}

impl CdStoreConfig {
    /// Creates a configuration with the default 8 KB average chunk size.
    pub fn new(n: usize, k: usize) -> Result<Self, CdStoreError> {
        if k == 0 || n <= k || n > 255 {
            return Err(CdStoreError::InvalidConfig(format!(
                "require 0 < k < n <= 255, got n={n}, k={k}"
            )));
        }
        Ok(CdStoreConfig {
            n,
            k,
            chunker: ChunkerConfig::default(),
        })
    }

    /// Sets a custom chunker configuration.
    pub fn with_chunker(mut self, chunker: ChunkerConfig) -> Self {
        self.chunker = chunker;
        self
    }
}

/// Aggregated system statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemStats {
    /// Accumulated deduplication counters across all uploads.
    pub dedup: DedupStats,
    /// Per-server traffic and deduplication counters.
    pub servers: Vec<ServerStats>,
    /// Physical bytes stored per cloud backend (after container flush).
    pub backend_bytes: Vec<u64>,
    /// Index bytes per server (drives VM sizing in the cost model).
    pub index_bytes: Vec<usize>,
    /// Number of backed-up files (across users and versions).
    pub files: usize,
}

/// The CDStore system: `n` servers plus per-user clients, with failure
/// injection and repair.
pub struct CdStore {
    config: CdStoreConfig,
    servers: Vec<CdStoreServer>,
    available: Vec<bool>,
    dedup: DedupStats,
    /// Catalogue of `(user, pathname)` pairs ever backed up, used by repair
    /// and statistics. (In a deployment this information lives in the file
    /// indices; the façade keeps a copy for convenience.)
    catalog: BTreeSet<(u64, String)>,
}

impl CdStore {
    /// Creates a CDStore deployment with `n` in-memory servers.
    pub fn new(config: CdStoreConfig) -> Self {
        CdStore {
            servers: (0..config.n).map(CdStoreServer::new).collect(),
            available: vec![true; config.n],
            dedup: DedupStats::new(),
            catalog: BTreeSet::new(),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> CdStoreConfig {
        self.config
    }

    /// Builds a client handle for a user.
    pub fn client(&self, user: u64) -> Result<CdStoreClient, CdStoreError> {
        CdStoreClient::with_chunker(user, self.config.n, self.config.k, self.config.chunker)
    }

    /// Backs up a file for a user.
    pub fn backup(
        &mut self,
        user: u64,
        pathname: &str,
        data: &[u8],
    ) -> Result<UploadReport, CdStoreError> {
        self.ensure_all_clouds_up()?;
        let client = self.client(user)?;
        let report = client.upload(&mut self.servers, pathname, data)?;
        self.dedup.accumulate(&report.dedup);
        self.catalog.insert((user, pathname.to_string()));
        Ok(report)
    }

    /// Backs up a file already divided into chunks (trace-driven workloads).
    pub fn backup_chunks(
        &mut self,
        user: u64,
        pathname: &str,
        chunks: &[Vec<u8>],
    ) -> Result<UploadReport, CdStoreError> {
        self.ensure_all_clouds_up()?;
        let client = self.client(user)?;
        let report = client.upload_chunks(&mut self.servers, pathname, chunks)?;
        self.dedup.accumulate(&report.dedup);
        self.catalog.insert((user, pathname.to_string()));
        Ok(report)
    }

    /// Restores a file for a user from any `k` available clouds.
    pub fn restore(&mut self, user: u64, pathname: &str) -> Result<Vec<u8>, CdStoreError> {
        let client = self.client(user)?;
        client.download(&mut self.servers, &self.available, pathname)
    }

    /// Deletes a file's index entries on all available servers (share
    /// garbage collection is future work, §4.7).
    pub fn delete(&mut self, user: u64, pathname: &str) -> Result<bool, CdStoreError> {
        let client = self.client(user)?;
        let encoded = client.encode_pathname(pathname)?;
        let mut any = false;
        for (i, server) in self.servers.iter_mut().enumerate() {
            if self.available[i] {
                any |= server.delete_file(user, &encoded[i]);
            }
        }
        self.catalog.remove(&(user, pathname.to_string()));
        Ok(any)
    }

    /// Injects a failure of cloud `i` (its server becomes unreachable).
    pub fn fail_cloud(&mut self, i: usize) {
        self.available[i] = false;
    }

    /// Marks cloud `i` reachable again.
    pub fn recover_cloud(&mut self, i: usize) {
        self.available[i] = true;
    }

    /// Whether cloud `i` is currently reachable.
    pub fn is_cloud_available(&self, i: usize) -> bool {
        self.available[i]
    }

    /// Replaces cloud `i` with a brand-new empty server (permanent loss) and
    /// rebuilds every lost share on it from the surviving `k` clouds, as in
    /// Reed-Solomon repair (§3.1). Returns the number of files repaired.
    pub fn replace_and_repair_cloud(&mut self, i: usize) -> Result<usize, CdStoreError> {
        self.servers[i] = CdStoreServer::new(i);
        self.available[i] = true;
        let catalog: Vec<(u64, String)> = self.catalog.iter().cloned().collect();
        let mut repaired = 0usize;
        for (user, pathname) in catalog {
            // Restore from the surviving clouds...
            let client = self.client(user)?;
            let mut availability = self.available.clone();
            availability[i] = false;
            let data = client.download(&mut self.servers, &availability, &pathname)?;
            // ...and re-upload, which regenerates the identical convergent
            // shares and repopulates cloud i (the other clouds deduplicate the
            // re-uploaded shares away).
            client.upload(&mut self.servers, &pathname, &data)?;
            repaired += 1;
        }
        Ok(repaired)
    }

    /// Seals open containers on every server.
    pub fn flush(&mut self) -> Result<(), CdStoreError> {
        for server in &mut self.servers {
            server.flush()?;
        }
        Ok(())
    }

    /// Aggregated system statistics.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            dedup: self.dedup,
            servers: self.servers.iter().map(|s| s.stats()).collect(),
            backend_bytes: self.servers.iter().map(|s| s.backend_bytes()).collect(),
            index_bytes: self.servers.iter().map(|s| s.index_bytes()).collect(),
            files: self.catalog.len(),
        }
    }

    /// Direct access to the servers (used by benchmarks that drive clients
    /// explicitly).
    pub fn servers_mut(&mut self) -> &mut [CdStoreServer] {
        &mut self.servers
    }

    fn ensure_all_clouds_up(&self) -> Result<(), CdStoreError> {
        let up = self.available.iter().filter(|&&a| a).count();
        if up < self.config.n {
            // Uploads write to all n clouds so redundancy is never silently
            // degraded; the paper's prototype behaves the same way.
            return Err(CdStoreError::NotEnoughClouds {
                needed: self.config.n,
                available: up,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| ((i / 700) as u8).wrapping_mul(17).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn backup_restore_delete_lifecycle() {
        let mut store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
        let data = sample(250_000, 1);
        let report = store.backup(7, "/docs.tar", &data).unwrap();
        assert_eq!(report.dedup.logical_bytes, data.len() as u64);
        assert_eq!(store.stats().files, 1);
        assert_eq!(store.restore(7, "/docs.tar").unwrap(), data);
        assert!(store.delete(7, "/docs.tar").unwrap());
        assert!(store.restore(7, "/docs.tar").is_err());
        assert_eq!(store.stats().files, 0);
    }

    #[test]
    fn tolerates_cloud_failures_up_to_n_minus_k() {
        let mut store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
        let data = sample(100_000, 2);
        store.backup(1, "/f", &data).unwrap();
        store.fail_cloud(0);
        assert!(!store.is_cloud_available(0));
        assert_eq!(store.restore(1, "/f").unwrap(), data);
        // Backups require all clouds.
        assert!(matches!(
            store.backup(1, "/g", &data),
            Err(CdStoreError::NotEnoughClouds { .. })
        ));
        store.fail_cloud(1);
        assert!(matches!(
            store.restore(1, "/f"),
            Err(CdStoreError::NotEnoughClouds { .. })
        ));
        store.recover_cloud(0);
        store.recover_cloud(1);
        assert_eq!(store.restore(1, "/f").unwrap(), data);
    }

    #[test]
    fn repair_rebuilds_a_lost_cloud() {
        let mut store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
        let data_a = sample(180_000, 3);
        let data_b = sample(90_000, 4);
        store.backup(1, "/a", &data_a).unwrap();
        store.backup(2, "/b", &data_b).unwrap();
        let physical_before: u64 = store
            .stats()
            .servers
            .iter()
            .map(|s| s.physical_share_bytes)
            .sum();

        // Cloud 2 is lost permanently and replaced by an empty one.
        let repaired = store.replace_and_repair_cloud(2).unwrap();
        assert_eq!(repaired, 2);
        // All data is still restorable even if another cloud now fails.
        store.fail_cloud(0);
        assert_eq!(store.restore(1, "/a").unwrap(), data_a);
        assert_eq!(store.restore(2, "/b").unwrap(), data_b);
        // Repair regenerated roughly the lost quarter of the physical data,
        // not a full re-store (convergent shares deduplicate on survivors).
        let physical_after: u64 = store
            .stats()
            .servers
            .iter()
            .map(|s| s.physical_share_bytes)
            .sum();
        assert!(physical_after >= physical_before);
        assert!(physical_after < physical_before * 2);
    }

    #[test]
    fn stats_aggregate_across_users_and_uploads() {
        let mut store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
        let data = sample(150_000, 5);
        store.backup(1, "/u1", &data).unwrap();
        store.backup(2, "/u2", &data).unwrap();
        store.flush().unwrap();
        let stats = store.stats();
        assert_eq!(stats.files, 2);
        assert_eq!(stats.dedup.logical_bytes, 2 * data.len() as u64);
        // Inter-user dedup: physical is roughly half of transferred.
        assert!(stats.dedup.inter_user_saving() > 0.45);
        assert_eq!(stats.servers.len(), 4);
        assert!(stats.backend_bytes.iter().all(|&b| b > 0));
        assert!(stats.index_bytes.iter().all(|&b| b > 0));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(CdStoreConfig::new(3, 3).is_err());
        assert!(CdStoreConfig::new(0, 0).is_err());
        assert!(CdStoreConfig::new(4, 3).is_ok());
    }
}
