//! Splitting byte buffers into equal-size shards and reassembling them.
//!
//! CAONT-RS divides the CAONT package into `k` equal-size shares, padding
//! with zeroes when the package length is not a multiple of `k` (§3.2). The
//! original length is carried in the share metadata so padding can be removed
//! on decode.

/// Returns the shard size used when splitting `data_len` bytes into `k`
/// equal-size shards (the ceiling division of the two).
pub fn shard_size(data_len: usize, k: usize) -> usize {
    assert!(k > 0, "k must be positive");
    data_len.div_ceil(k)
}

/// Splits `data` into exactly `k` shards of equal size, zero-padding the
/// final shard as needed.
///
/// An empty input yields `k` empty shards.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn pad_and_split(data: &[u8], k: usize) -> Vec<Vec<u8>> {
    assert!(k > 0, "k must be positive");
    let size = shard_size(data.len(), k);
    let mut shards = Vec::with_capacity(k);
    for i in 0..k {
        let start = (i * size).min(data.len());
        let end = ((i + 1) * size).min(data.len());
        let mut shard = vec![0u8; size];
        shard[..end - start].copy_from_slice(&data[start..end]);
        shards.push(shard);
    }
    shards
}

/// Reassembles shards produced by [`pad_and_split`] back into the original
/// buffer of length `original_len` (dropping the zero padding).
///
/// # Panics
///
/// Panics if the shards cannot contain `original_len` bytes.
pub fn reassemble(shards: &[Vec<u8>], original_len: usize) -> Vec<u8> {
    let total: usize = shards.iter().map(|s| s.len()).sum();
    assert!(
        total >= original_len,
        "shards hold {total} bytes but {original_len} were requested"
    );
    let mut out = Vec::with_capacity(original_len);
    for shard in shards {
        if out.len() >= original_len {
            break;
        }
        let take = (original_len - out.len()).min(shard.len());
        out.extend_from_slice(&shard[..take]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shard_size_is_ceiling_division() {
        assert_eq!(shard_size(0, 3), 0);
        assert_eq!(shard_size(1, 3), 1);
        assert_eq!(shard_size(3, 3), 1);
        assert_eq!(shard_size(4, 3), 2);
        assert_eq!(shard_size(9, 3), 3);
        assert_eq!(shard_size(10, 3), 4);
    }

    #[test]
    fn split_produces_equal_sized_shards() {
        let data: Vec<u8> = (0..10).collect();
        let shards = pad_and_split(&data, 3);
        assert_eq!(shards.len(), 3);
        assert!(shards.iter().all(|s| s.len() == 4));
        assert_eq!(shards[0], vec![0, 1, 2, 3]);
        assert_eq!(shards[1], vec![4, 5, 6, 7]);
        assert_eq!(shards[2], vec![8, 9, 0, 0]);
    }

    #[test]
    fn empty_input_gives_empty_shards() {
        let shards = pad_and_split(&[], 4);
        assert_eq!(shards.len(), 4);
        assert!(shards.iter().all(|s| s.is_empty()));
        assert_eq!(reassemble(&shards, 0), Vec::<u8>::new());
    }

    #[test]
    fn exact_multiple_needs_no_padding() {
        let data: Vec<u8> = (0..12).collect();
        let shards = pad_and_split(&data, 4);
        assert!(shards.iter().all(|s| s.len() == 3));
        assert_eq!(reassemble(&shards, 12), data);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        pad_and_split(b"abc", 0);
    }

    #[test]
    #[should_panic(expected = "were requested")]
    fn reassemble_rejects_short_shards() {
        reassemble(&[vec![1, 2]], 5);
    }

    proptest! {
        #[test]
        fn split_reassemble_round_trips(data in proptest::collection::vec(any::<u8>(), 0..500),
                                        k in 1usize..12) {
            let shards = pad_and_split(&data, k);
            prop_assert_eq!(shards.len(), k);
            let size = shard_size(data.len(), k);
            prop_assert!(shards.iter().all(|s| s.len() == size));
            prop_assert_eq!(reassemble(&shards, data.len()), data);
        }
    }
}
