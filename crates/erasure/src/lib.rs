//! Systematic Reed-Solomon erasure coding over GF(2^8).
//!
//! This crate reproduces the Reed-Solomon substrate of CAONT-RS: a `(n, k)`
//! code that turns `k` equal-size data shards into `n` shards such that any
//! `k` of them reconstruct the originals. The code is *systematic* — the
//! first `k` output shards are the data shards themselves — matching the
//! AONT-RS construction in the paper (§2) and Plank's tutorial construction
//! [46, 47].
//!
//! # Examples
//!
//! ```
//! use cdstore_erasure::ReedSolomon;
//!
//! let rs = ReedSolomon::new(4, 3).unwrap();
//! let shards = rs.encode_data(b"hello, reed-solomon world!").unwrap();
//! assert_eq!(shards.len(), 4);
//!
//! // Lose one shard and reconstruct.
//! let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
//! received[1] = None;
//! let recovered = rs.reconstruct_data(&received, b"hello, reed-solomon world!".len()).unwrap();
//! assert_eq!(recovered, b"hello, reed-solomon world!");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod code;
pub mod shard;

pub use code::{ErasureError, ReedSolomon};
pub use shard::{pad_and_split, reassemble, shard_size};
