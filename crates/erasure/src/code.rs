//! The systematic `(n, k)` Reed-Solomon code.

use core::fmt;

use cdstore_gf::{region, Matrix};

use crate::shard::pad_and_split;

/// Errors returned by Reed-Solomon encoding and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErasureError {
    /// The `(n, k)` parameters are invalid (`k == 0`, `n <= k`, or `n > 255`).
    InvalidParameters {
        /// Total number of shards requested.
        n: usize,
        /// Number of data shards requested.
        k: usize,
    },
    /// The number of shards supplied does not match `n`.
    WrongShardCount {
        /// Number expected.
        expected: usize,
        /// Number supplied.
        actual: usize,
    },
    /// Fewer than `k` shards are available for reconstruction.
    NotEnoughShards {
        /// Shards required.
        needed: usize,
        /// Shards available.
        available: usize,
    },
    /// The supplied shards do not all have the same length.
    InconsistentShardSize,
    /// Internal matrix inversion failed (should not happen for a valid code).
    MatrixSingular,
}

impl fmt::Display for ErasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErasureError::InvalidParameters { n, k } => {
                write!(f, "invalid Reed-Solomon parameters n={n}, k={k}")
            }
            ErasureError::WrongShardCount { expected, actual } => {
                write!(f, "expected {expected} shards, got {actual}")
            }
            ErasureError::NotEnoughShards { needed, available } => {
                write!(
                    f,
                    "need {needed} shards to reconstruct, only {available} available"
                )
            }
            ErasureError::InconsistentShardSize => write!(f, "shards have inconsistent sizes"),
            ErasureError::MatrixSingular => write!(f, "decode matrix is singular"),
        }
    }
}

impl std::error::Error for ErasureError {}

/// A systematic `(n, k)` Reed-Solomon erasure code over GF(2^8).
///
/// The dispersal matrix is a systematized `n x k` Vandermonde matrix: the
/// first `k` rows form the identity (data shards pass through unchanged) and
/// every `k x k` submatrix is invertible, so any `k` of the `n` shards
/// reconstruct the data.
#[derive(Clone)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    /// `n x k` encoding matrix, row-major.
    matrix: Matrix,
}

impl fmt::Debug for ReedSolomon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReedSolomon(n={}, k={})", self.n, self.k)
    }
}

impl ReedSolomon {
    /// Creates a new `(n, k)` code.
    ///
    /// Requirements: `0 < k < n <= 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, ErasureError> {
        if k == 0 || n <= k || n > 255 {
            return Err(ErasureError::InvalidParameters { n, k });
        }
        let matrix = Matrix::vandermonde(n, k)
            .systematize(k)
            .map_err(|_| ErasureError::MatrixSingular)?;
        Ok(ReedSolomon { n, k, matrix })
    }

    /// Total number of shards produced per encode.
    pub fn total_shards(&self) -> usize {
        self.n
    }

    /// Number of data shards (the reconstruction threshold).
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Number of parity shards.
    pub fn parity_shards(&self) -> usize {
        self.n - self.k
    }

    /// Storage blowup of the code: `n / k`.
    pub fn storage_blowup(&self) -> f64 {
        self.n as f64 / self.k as f64
    }

    /// Returns the `n x k` encoding matrix.
    pub fn encoding_matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Encodes `k` equal-size data shards into `n` shards (the first `k`
    /// outputs are copies of the inputs).
    pub fn encode_shards(&self, data_shards: &[&[u8]]) -> Result<Vec<Vec<u8>>, ErasureError> {
        if data_shards.len() != self.k {
            return Err(ErasureError::WrongShardCount {
                expected: self.k,
                actual: data_shards.len(),
            });
        }
        let size = data_shards[0].len();
        if data_shards.iter().any(|s| s.len() != size) {
            return Err(ErasureError::InconsistentShardSize);
        }
        let mut out = Vec::with_capacity(self.n);
        // Systematic part: copy the data shards through.
        for shard in data_shards {
            out.push(shard.to_vec());
        }
        // Parity part: rows k..n of the encoding matrix.
        for row in self.k..self.n {
            let mut parity = vec![0u8; size];
            for (j, shard) in data_shards.iter().enumerate() {
                region::mul_acc(&mut parity, shard, self.matrix.get(row, j));
            }
            out.push(parity);
        }
        Ok(out)
    }

    /// Splits a byte buffer into `k` zero-padded shards and encodes them.
    pub fn encode_data(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, ErasureError> {
        let shards = pad_and_split(data, self.k);
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        self.encode_shards(&refs)
    }

    /// Like [`encode_data`](ReedSolomon::encode_data), but writes the `n`
    /// shards into `out`, reusing the capacity of any buffers already there.
    ///
    /// `out` is resized to `n` entries; each entry is overwritten in place
    /// (no allocation once its capacity has grown to the shard size). This is
    /// the allocation-free path the streaming encode pipeline runs on.
    pub fn encode_into(&self, data: &[u8], out: &mut Vec<Vec<u8>>) -> Result<(), ErasureError> {
        let size = crate::shard::shard_size(data.len(), self.k);
        out.resize_with(self.n, Vec::new);
        let (data_part, parity_part) = out.split_at_mut(self.k);
        // Systematic part: copy `data` through, zero-padding the tail shard.
        for (i, shard) in data_part.iter_mut().enumerate() {
            let start = (i * size).min(data.len());
            let end = ((i + 1) * size).min(data.len());
            shard.clear();
            shard.extend_from_slice(&data[start..end]);
            shard.resize(size, 0);
        }
        // Parity part: rows k..n of the encoding matrix, accumulated into
        // zeroed reused buffers.
        for (p, parity) in parity_part.iter_mut().enumerate() {
            parity.clear();
            parity.resize(size, 0);
            for (j, shard) in data_part.iter().enumerate() {
                region::mul_acc(parity, shard, self.matrix.get(self.k + p, j));
            }
        }
        Ok(())
    }

    /// Validates a reconstruction input: right shard count, at least `k`
    /// available, equal sizes. Returns the available indices and shard size.
    fn validate_reconstruct(
        &self,
        shards: &[Option<&[u8]>],
    ) -> Result<(Vec<usize>, usize), ErasureError> {
        if shards.len() != self.n {
            return Err(ErasureError::WrongShardCount {
                expected: self.n,
                actual: shards.len(),
            });
        }
        let available: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| i))
            .collect();
        if available.len() < self.k {
            return Err(ErasureError::NotEnoughShards {
                needed: self.k,
                available: available.len(),
            });
        }
        let size = shards[available[0]].expect("available").len();
        if available
            .iter()
            .any(|&i| shards[i].expect("available").len() != size)
        {
            return Err(ErasureError::InconsistentShardSize);
        }
        Ok((available, size))
    }

    /// Computes the inverted decode matrix and the `k` chosen input slices
    /// for the general (non-systematic-survivor) reconstruction path.
    fn decode_inputs<'a>(
        &self,
        shards: &[Option<&'a [u8]>],
        available: &[usize],
    ) -> Result<(Matrix, Vec<&'a [u8]>), ErasureError> {
        let chosen = &available[..self.k];
        let sub = self.matrix.select_rows(chosen);
        let inv = sub.invert().map_err(|_| ErasureError::MatrixSingular)?;
        let inputs: Vec<&[u8]> = chosen
            .iter()
            .map(|&i| shards[i].expect("available"))
            .collect();
        Ok((inv, inputs))
    }

    /// Reconstructs the `k` data shards from any `k` available shards.
    ///
    /// `shards` must have length `n`; missing shards are `None`.
    pub fn reconstruct_data_shards(
        &self,
        shards: &[Option<Vec<u8>>],
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        let borrowed: Vec<Option<&[u8]>> = shards.iter().map(|s| s.as_deref()).collect();
        self.reconstruct_data_shards_borrowed(&borrowed)
    }

    /// Like [`reconstruct_data_shards`](ReedSolomon::reconstruct_data_shards)
    /// but over borrowed shard slices, so callers selecting k-subsets (e.g.
    /// the CAONT-RS brute-force decoder) never copy share bytes.
    pub fn reconstruct_data_shards_borrowed(
        &self,
        shards: &[Option<&[u8]>],
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        let (available, size) = self.validate_reconstruct(shards)?;
        // Fast path: all k data shards survive.
        if available.iter().take_while(|&&i| i < self.k).count() >= self.k {
            return Ok((0..self.k)
                .map(|i| shards[i].expect("data shard present").to_vec())
                .collect());
        }
        let (inv, inputs) = self.decode_inputs(shards, &available)?;
        let mut outputs = vec![vec![0u8; size]; self.k];
        let mut out_refs: Vec<&mut [u8]> = outputs.iter_mut().map(|o| o.as_mut_slice()).collect();
        region::matrix_apply_into(inv.as_slice(), self.k, self.k, &inputs, &mut out_refs);
        Ok(outputs)
    }

    /// Reconstructs the original byte buffer of length `original_len` from
    /// any `k` available shards.
    pub fn reconstruct_data(
        &self,
        shards: &[Option<Vec<u8>>],
        original_len: usize,
    ) -> Result<Vec<u8>, ErasureError> {
        let borrowed: Vec<Option<&[u8]>> = shards.iter().map(|s| s.as_deref()).collect();
        self.reconstruct_data_borrowed(&borrowed, original_len)
    }

    /// Like [`reconstruct_data`](ReedSolomon::reconstruct_data) but over
    /// borrowed shard slices, decoding straight into one flat output buffer
    /// (no per-shard allocation, no reassembly copy) — the kernel the
    /// streamed-restore decode windows run on.
    ///
    /// # Panics
    ///
    /// Panics if the available shards hold fewer than `original_len` bytes.
    pub fn reconstruct_data_borrowed(
        &self,
        shards: &[Option<&[u8]>],
        original_len: usize,
    ) -> Result<Vec<u8>, ErasureError> {
        let (available, size) = self.validate_reconstruct(shards)?;
        assert!(
            size * self.k >= original_len,
            "shards hold {} bytes but {original_len} were requested",
            size * self.k
        );
        if size == 0 {
            return Ok(Vec::new());
        }
        let mut out = vec![0u8; size * self.k];
        if available.iter().take_while(|&&i| i < self.k).count() >= self.k {
            // Fast path: all k data shards survive; copy them through.
            for (i, chunk) in out.chunks_mut(size).enumerate() {
                chunk.copy_from_slice(shards[i].expect("data shard present"));
            }
        } else {
            let (inv, inputs) = self.decode_inputs(shards, &available)?;
            let mut out_refs: Vec<&mut [u8]> = out.chunks_mut(size).collect();
            region::matrix_apply_into(inv.as_slice(), self.k, self.k, &inputs, &mut out_refs);
        }
        out.truncate(original_len);
        Ok(out)
    }

    /// Reconstructs *all* `n` shards (data and parity) from any `k` available
    /// shards — the repair operation CDStore runs after a cloud failure.
    pub fn reconstruct_all_shards(
        &self,
        shards: &[Option<Vec<u8>>],
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        let data_shards = self.reconstruct_data_shards(shards)?;
        let refs: Vec<&[u8]> = data_shards.iter().map(|s| s.as_slice()).collect();
        self.encode_shards(&refs)
    }

    /// Verifies that a full set of `n` shards is consistent with the code
    /// (i.e. the parity shards match the data shards).
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, ErasureError> {
        if shards.len() != self.n {
            return Err(ErasureError::WrongShardCount {
                expected: self.n,
                actual: shards.len(),
            });
        }
        let refs: Vec<&[u8]> = shards[..self.k].iter().map(|s| s.as_slice()).collect();
        let expected = self.encode_shards(&refs)?;
        Ok(expected == shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(matches!(
            ReedSolomon::new(3, 3),
            Err(ErasureError::InvalidParameters { .. })
        ));
        assert!(matches!(
            ReedSolomon::new(3, 0),
            Err(ErasureError::InvalidParameters { .. })
        ));
        assert!(matches!(
            ReedSolomon::new(256, 3),
            Err(ErasureError::InvalidParameters { .. })
        ));
        assert!(ReedSolomon::new(4, 3).is_ok());
        assert!(ReedSolomon::new(255, 254).is_ok());
    }

    #[test]
    fn code_is_systematic() {
        let rs = ReedSolomon::new(6, 4).unwrap();
        let data: Vec<u8> = (0..64).collect();
        let shards = rs.encode_data(&data).unwrap();
        assert_eq!(shards.len(), 6);
        let split = pad_and_split(&data, 4);
        assert_eq!(&shards[..4], &split[..]);
    }

    #[test]
    fn encode_into_matches_encode_data_and_reuses_buffers() {
        let rs = ReedSolomon::new(6, 4).unwrap();
        let mut out = Vec::new();
        for round in 0..3u32 {
            let data: Vec<u8> = (0..500u32)
                .map(|i| ((i + round * 97) % 256) as u8)
                .collect();
            rs.encode_into(&data, &mut out).unwrap();
            assert_eq!(out, rs.encode_data(&data).unwrap(), "round {round}");
        }
        // Smaller payload after a larger one: buffers shrink in place.
        rs.encode_into(b"tiny", &mut out).unwrap();
        assert_eq!(out, rs.encode_data(b"tiny").unwrap());
        assert!(out[0].capacity() >= 125, "capacity should be retained");
    }

    #[test]
    fn any_k_of_n_reconstructs() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data: Vec<u8> = (0..200u32).map(|i| (i * 7 % 256) as u8).collect();
        let shards = rs.encode_data(&data).unwrap();
        // Try every 3-subset of the 5 shards.
        for a in 0..5 {
            for b in a + 1..5 {
                for c in b + 1..5 {
                    let mut received: Vec<Option<Vec<u8>>> = vec![None; 5];
                    for &i in &[a, b, c] {
                        received[i] = Some(shards[i].clone());
                    }
                    let recovered = rs.reconstruct_data(&received, data.len()).unwrap();
                    assert_eq!(recovered, data, "subset ({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn fewer_than_k_shards_fails() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let shards = rs.encode_data(b"some data to protect").unwrap();
        let received: Vec<Option<Vec<u8>>> =
            vec![Some(shards[0].clone()), Some(shards[3].clone()), None, None];
        assert!(matches!(
            rs.reconstruct_data(&received, 20),
            Err(ErasureError::NotEnoughShards {
                needed: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn repair_rebuilds_lost_shards() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let data = b"repair after a cloud failure".to_vec();
        let shards = rs.encode_data(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
        received[2] = None; // cloud 2 failed
        let rebuilt = rs.reconstruct_all_shards(&received).unwrap();
        assert_eq!(rebuilt, shards);
        assert!(rs.verify(&rebuilt).unwrap());
    }

    #[test]
    fn verify_detects_corruption() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let mut shards = rs.encode_data(b"integrity matters").unwrap();
        assert!(rs.verify(&shards).unwrap());
        shards[3][0] ^= 0xff;
        assert!(!rs.verify(&shards).unwrap());
    }

    #[test]
    fn wrong_shard_count_is_rejected() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        assert!(matches!(
            rs.encode_shards(&[b"ab".as_slice(), b"cd".as_slice()]),
            Err(ErasureError::WrongShardCount {
                expected: 3,
                actual: 2
            })
        ));
        assert!(matches!(
            rs.reconstruct_data_shards(&[None, None]),
            Err(ErasureError::WrongShardCount {
                expected: 4,
                actual: 2
            })
        ));
    }

    #[test]
    fn inconsistent_shard_sizes_are_rejected() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        assert!(matches!(
            rs.encode_shards(&[b"ab".as_slice(), b"cd".as_slice(), b"e".as_slice()]),
            Err(ErasureError::InconsistentShardSize)
        ));
    }

    #[test]
    fn empty_data_encodes_and_reconstructs() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let shards = rs.encode_data(b"").unwrap();
        assert!(shards.iter().all(|s| s.is_empty()));
        let received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        assert_eq!(rs.reconstruct_data(&received, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn storage_blowup_matches_n_over_k() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        assert!((rs.storage_blowup() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(rs.parity_shards(), 1);
    }

    #[test]
    fn large_n_configurations_work() {
        // The paper's Figure 5(b) sweeps n from 4 to 20 with k/n <= 3/4.
        for n in (4..=20).step_by(4) {
            let k = (n * 3) / 4;
            let rs = ReedSolomon::new(n, k).unwrap();
            let data: Vec<u8> = (0..997u32).map(|i| (i % 251) as u8).collect();
            let shards = rs.encode_data(&data).unwrap();
            let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
            // Drop the first n-k shards (worst case: all data shards where possible).
            for item in received.iter_mut().take(n - k) {
                *item = None;
            }
            assert_eq!(rs.reconstruct_data(&received, data.len()).unwrap(), data);
        }
    }

    proptest! {
        #[test]
        fn random_erasures_round_trip(seed: u64,
                                      data in proptest::collection::vec(any::<u8>(), 1..600),
                                      n in 3usize..12) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let k = rng.gen_range(1..n);
            let rs = ReedSolomon::new(n, k).unwrap();
            let shards = rs.encode_data(&data).unwrap();
            // Keep a random k-subset.
            let mut indices: Vec<usize> = (0..n).collect();
            for i in (1..indices.len()).rev() {
                let j = rng.gen_range(0..=i);
                indices.swap(i, j);
            }
            let keep: std::collections::HashSet<usize> = indices[..k].iter().copied().collect();
            let received: Vec<Option<Vec<u8>>> = (0..n)
                .map(|i| keep.contains(&i).then(|| shards[i].clone()))
                .collect();
            prop_assert_eq!(rs.reconstruct_data(&received, data.len()).unwrap(), data);
        }

        #[test]
        fn parity_is_linear(a in proptest::collection::vec(any::<u8>(), 30),
                            b in proptest::collection::vec(any::<u8>(), 30)) {
            // RS is a linear code: encode(a ^ b) == encode(a) ^ encode(b).
            let rs = ReedSolomon::new(6, 3).unwrap();
            let xored: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            let ea = rs.encode_data(&a).unwrap();
            let eb = rs.encode_data(&b).unwrap();
            let ex = rs.encode_data(&xored).unwrap();
            for i in 0..6 {
                let combined: Vec<u8> = ea[i].iter().zip(&eb[i]).map(|(x, y)| x ^ y).collect();
                prop_assert_eq!(&combined, &ex[i]);
            }
        }
    }
}
