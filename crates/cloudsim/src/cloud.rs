//! Simulated clouds and the multi-cloud deployment.

use std::fmt;
use std::sync::Arc;

use cdstore_storage::{
    FaultConfig, FaultPlan, FaultyBackend, MemoryBackend, StorageBackend, StorageError,
};
use parking_lot::Mutex;

use crate::profile::{CloudProfile, Direction};

/// Errors returned by simulated cloud operations.
#[derive(Debug)]
pub enum CloudError {
    /// The cloud is currently unavailable (failure injection).
    Unavailable(String),
    /// An error from the cloud's storage backend.
    Storage(StorageError),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::Unavailable(name) => write!(f, "cloud {name} is unavailable"),
            CloudError::Storage(e) => write!(f, "cloud storage error: {e}"),
        }
    }
}

impl std::error::Error for CloudError {}

impl From<StorageError> for CloudError {
    fn from(e: StorageError) -> Self {
        CloudError::Storage(e)
    }
}

/// Accumulated traffic and simulated-time statistics of one cloud.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CloudStats {
    /// Bytes uploaded to the cloud.
    pub bytes_uploaded: u64,
    /// Bytes downloaded from the cloud.
    pub bytes_downloaded: u64,
    /// Number of upload requests.
    pub upload_requests: u64,
    /// Number of download requests.
    pub download_requests: u64,
    /// Simulated seconds spent uploading (single-flow model).
    pub upload_seconds: f64,
    /// Simulated seconds spent downloading (single-flow model).
    pub download_seconds: f64,
}

/// One simulated cloud: an object store plus a bandwidth profile and a
/// [`FaultPlan`] for failure injection — the same fault model the chaos
/// harness drives, so the simulator and the chaos suite cannot diverge.
pub struct SimCloud {
    index: usize,
    profile: CloudProfile,
    backend: Arc<MemoryBackend>,
    faulty: FaultyBackend,
    plan: Arc<FaultPlan>,
    stats: Mutex<CloudStats>,
    /// Request unit used for latency accounting (4 MB batches, §4.1).
    unit_bytes: u64,
}

impl SimCloud {
    /// Creates a simulated cloud with the given index and profile, using a
    /// clean fault plan (no injected faults until configured).
    pub fn new(index: usize, profile: CloudProfile) -> Self {
        Self::with_fault_plan(
            index,
            profile,
            Arc::new(FaultPlan::new(FaultConfig::clean(index as u64))),
        )
    }

    /// Creates a simulated cloud whose WAN transfers run through the given
    /// fault plan (transient errors, torn writes, outage windows). The
    /// simulator keeps its own simulated-time accounting, so plans used here
    /// normally leave `shaping` unset.
    pub fn with_fault_plan(index: usize, profile: CloudProfile, plan: Arc<FaultPlan>) -> Self {
        let backend = Arc::new(MemoryBackend::new());
        let faulty = FaultyBackend::new(backend.clone(), plan.clone());
        SimCloud {
            index,
            profile,
            backend,
            faulty,
            plan,
            stats: Mutex::new(CloudStats::default()),
            unit_bytes: 4 * 1024 * 1024,
        }
    }

    /// The cloud's index (share `i` of every secret is stored on cloud `i`).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The cloud's bandwidth profile.
    pub fn profile(&self) -> &CloudProfile {
        &self.profile
    }

    /// The cloud's object-storage backend (shared with the co-located
    /// CDStore server, which accesses it free of charge over the internal
    /// network, §3.1).
    pub fn backend(&self) -> Arc<MemoryBackend> {
        self.backend.clone()
    }

    /// The fault plan driving this cloud's WAN transfers.
    pub fn fault_plan(&self) -> Arc<FaultPlan> {
        self.plan.clone()
    }

    /// Marks the cloud available or unavailable (failure injection) by
    /// forcing or lifting an outage on the fault plan.
    pub fn set_available(&self, available: bool) {
        self.plan.set_outage(!available);
    }

    /// Whether the cloud is currently reachable (no forced or scheduled
    /// outage on its fault plan).
    pub fn is_available(&self) -> bool {
        !self.plan.outage_active()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CloudStats {
        *self.stats.lock()
    }

    fn ensure_available(&self) -> Result<(), CloudError> {
        if self.is_available() {
            Ok(())
        } else {
            Err(CloudError::Unavailable(self.profile.name.to_string()))
        }
    }

    /// Uploads an object over the simulated WAN, returning the simulated
    /// transfer time in seconds. The write runs through the cloud's fault
    /// plan, so transient errors and torn writes surface as
    /// [`CloudError::Storage`].
    pub fn upload(&self, key: &str, data: &[u8]) -> Result<f64, CloudError> {
        self.ensure_available()?;
        self.faulty.put(key, data)?;
        let seconds =
            self.profile
                .transfer_seconds(data.len() as u64, Direction::Upload, self.unit_bytes);
        let mut stats = self.stats.lock();
        stats.bytes_uploaded += data.len() as u64;
        stats.upload_requests += 1;
        stats.upload_seconds += seconds;
        Ok(seconds)
    }

    /// Downloads an object over the simulated WAN, returning the data and the
    /// simulated transfer time in seconds.
    pub fn download(&self, key: &str) -> Result<(Vec<u8>, f64), CloudError> {
        self.ensure_available()?;
        let data = self.faulty.get(key)?;
        let seconds =
            self.profile
                .transfer_seconds(data.len() as u64, Direction::Download, self.unit_bytes);
        let mut stats = self.stats.lock();
        stats.bytes_downloaded += data.len() as u64;
        stats.download_requests += 1;
        stats.download_seconds += seconds;
        Ok((data, seconds))
    }

    /// Total bytes stored in the cloud.
    pub fn stored_bytes(&self) -> u64 {
        self.backend.total_bytes().unwrap_or(0)
    }
}

/// The set of `n` clouds a CDStore deployment spans.
pub struct MultiCloud {
    clouds: Vec<Arc<SimCloud>>,
}

impl MultiCloud {
    /// Builds a multi-cloud from explicit profiles (one cloud per profile).
    pub fn new(profiles: &[CloudProfile]) -> Self {
        MultiCloud {
            clouds: profiles
                .iter()
                .enumerate()
                .map(|(i, p)| Arc::new(SimCloud::new(i, p.clone())))
                .collect(),
        }
    }

    /// The paper's cloud testbed: Amazon, Google, Azure, Rackspace.
    pub fn commercial() -> Self {
        Self::new(&CloudProfile::COMMERCIAL_CLOUDS)
    }

    /// A LAN testbed with `n` servers.
    pub fn lan(n: usize) -> Self {
        Self::new(&CloudProfile::lan_clouds(n))
    }

    /// Number of clouds.
    pub fn len(&self) -> usize {
        self.clouds.len()
    }

    /// Whether the deployment has no clouds.
    pub fn is_empty(&self) -> bool {
        self.clouds.is_empty()
    }

    /// Returns cloud `i`.
    pub fn cloud(&self, i: usize) -> Arc<SimCloud> {
        self.clouds[i].clone()
    }

    /// Iterates over all clouds.
    pub fn clouds(&self) -> impl Iterator<Item = &Arc<SimCloud>> {
        self.clouds.iter()
    }

    /// Indices of currently available clouds.
    pub fn available_clouds(&self) -> Vec<usize> {
        self.clouds
            .iter()
            .filter(|c| c.is_available())
            .map(|c| c.index())
            .collect()
    }

    /// Injects a failure of cloud `i`.
    pub fn fail_cloud(&self, i: usize) {
        self.clouds[i].set_available(false);
    }

    /// Restores cloud `i`.
    pub fn restore_cloud(&self, i: usize) {
        self.clouds[i].set_available(true);
    }

    /// Total bytes stored across all clouds.
    pub fn total_stored_bytes(&self) -> u64 {
        self.clouds.iter().map(|c| c.stored_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_download_round_trip_with_timing() {
        let cloud = SimCloud::new(0, CloudProfile::AZURE);
        let data = vec![1u8; 8 * 1024 * 1024];
        let up = cloud.upload("obj", &data).unwrap();
        let (fetched, down) = cloud.download("obj").unwrap();
        assert_eq!(fetched, data);
        assert!(up > 0.0 && down > 0.0);
        // Azure uploads faster than it downloads in Table 2, so uploading the
        // same object takes less time.
        assert!(up < down);
        let stats = cloud.stats();
        assert_eq!(stats.bytes_uploaded, data.len() as u64);
        assert_eq!(stats.bytes_downloaded, data.len() as u64);
        assert_eq!(stats.upload_requests, 1);
    }

    #[test]
    fn failure_injection_blocks_operations() {
        let cloud = SimCloud::new(2, CloudProfile::GOOGLE);
        cloud.upload("x", b"data").unwrap();
        cloud.set_available(false);
        assert!(matches!(
            cloud.upload("y", b"data"),
            Err(CloudError::Unavailable(_))
        ));
        assert!(matches!(
            cloud.download("x"),
            Err(CloudError::Unavailable(_))
        ));
        cloud.set_available(true);
        assert!(cloud.download("x").is_ok());
    }

    #[test]
    fn fault_plan_injects_transient_errors_into_wan_transfers() {
        let plan = Arc::new(FaultPlan::new(FaultConfig::clean(21).with_error_rate(0.5)));
        let cloud = SimCloud::with_fault_plan(0, CloudProfile::LAN, plan.clone());
        let mut failures = 0;
        for i in 0..100 {
            match cloud.upload(&format!("o{i}"), b"data") {
                Ok(_) => {}
                Err(CloudError::Storage(StorageError::Io(_))) => failures += 1,
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!((20..=80).contains(&failures), "got {failures} failures");
        assert_eq!(plan.schedule().len(), failures);
        // The availability flag and the plan are the same fault model.
        cloud.set_available(false);
        assert!(plan.outage_active());
        assert!(matches!(
            cloud.download("o0"),
            Err(CloudError::Unavailable(_))
        ));
        cloud.set_available(true);
        assert!(!plan.outage_active());
    }

    #[test]
    fn multicloud_construction_and_failures() {
        let mc = MultiCloud::commercial();
        assert_eq!(mc.len(), 4);
        assert_eq!(mc.available_clouds(), vec![0, 1, 2, 3]);
        mc.fail_cloud(1);
        assert_eq!(mc.available_clouds(), vec![0, 2, 3]);
        mc.restore_cloud(1);
        assert_eq!(mc.available_clouds().len(), 4);
        assert_eq!(mc.cloud(2).profile().name, "Azure");

        let lan = MultiCloud::lan(6);
        assert_eq!(lan.len(), 6);
        assert!(lan.clouds().all(|c| c.profile().name == "LAN"));
    }

    #[test]
    fn stored_bytes_accumulate_per_cloud() {
        let mc = MultiCloud::lan(3);
        mc.cloud(0).upload("a", &[0u8; 100]).unwrap();
        mc.cloud(1).upload("b", &[0u8; 200]).unwrap();
        assert_eq!(mc.cloud(0).stored_bytes(), 100);
        assert_eq!(mc.total_stored_bytes(), 300);
    }

    #[test]
    fn slow_clouds_take_longer_for_the_same_object() {
        let fast = SimCloud::new(0, CloudProfile::AZURE);
        let slow = SimCloud::new(1, CloudProfile::GOOGLE);
        let data = vec![9u8; 4 * 1024 * 1024];
        let t_fast = fast.upload("o", &data).unwrap();
        let t_slow = slow.upload("o", &data).unwrap();
        assert!(t_slow > 2.0 * t_fast);
    }
}
