//! Bandwidth and latency profiles of the simulated clouds.
//!
//! The cloud-testbed numbers reproduce Table 2 of the paper (measured MB/s
//! for 2 GB of unique data transferred in 4 MB units, September 2014, from a
//! client in Hong Kong); the LAN profile reproduces the ~110 MB/s effective
//! speed of the 1 Gb/s testbed switch reported in §5.5.

/// Transfer direction relative to the CDStore client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → cloud.
    Upload,
    /// Cloud → client.
    Download,
}

/// The bandwidth/latency profile of one cloud as seen from the client.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudProfile {
    /// Vendor name ("Amazon", "Google", ...).
    pub name: &'static str,
    /// Mean upload bandwidth in MB/s.
    pub upload_mbps: f64,
    /// Standard deviation of the upload bandwidth in MB/s.
    pub upload_std: f64,
    /// Mean download bandwidth in MB/s.
    pub download_mbps: f64,
    /// Standard deviation of the download bandwidth in MB/s.
    pub download_std: f64,
    /// Per-request round-trip latency in milliseconds.
    pub latency_ms: f64,
}

impl CloudProfile {
    /// Amazon S3 (Singapore), Table 2: upload 5.87 (0.19), download 4.45 (0.30).
    pub const AMAZON: CloudProfile = CloudProfile {
        name: "Amazon",
        upload_mbps: 5.87,
        upload_std: 0.19,
        download_mbps: 4.45,
        download_std: 0.30,
        latency_ms: 35.0,
    };

    /// Google Cloud Storage (Singapore), Table 2: 4.99 (0.23) / 4.45 (0.21).
    pub const GOOGLE: CloudProfile = CloudProfile {
        name: "Google",
        upload_mbps: 4.99,
        upload_std: 0.23,
        download_mbps: 4.45,
        download_std: 0.21,
        latency_ms: 35.0,
    };

    /// Microsoft Azure (Hong Kong), Table 2: 19.59 (1.20) / 13.78 (0.72).
    pub const AZURE: CloudProfile = CloudProfile {
        name: "Azure",
        upload_mbps: 19.59,
        upload_std: 1.20,
        download_mbps: 13.78,
        download_std: 0.72,
        latency_ms: 5.0,
    };

    /// Rackspace (Hong Kong), Table 2: 19.42 (1.06) / 12.93 (1.47).
    pub const RACKSPACE: CloudProfile = CloudProfile {
        name: "Rackspace",
        upload_mbps: 19.42,
        upload_std: 1.06,
        download_mbps: 12.93,
        download_std: 1.47,
        latency_ms: 5.0,
    };

    /// A node on the 1 Gb/s LAN testbed (§5.1): ~110 MB/s effective.
    pub const LAN: CloudProfile = CloudProfile {
        name: "LAN",
        upload_mbps: 110.0,
        upload_std: 2.0,
        download_mbps: 110.0,
        download_std: 2.0,
        latency_ms: 0.2,
    };

    /// The four commercial clouds of the paper's cloud testbed, in the order
    /// the shares are labelled (cloud 0..3).
    pub const COMMERCIAL_CLOUDS: [CloudProfile; 4] = [
        CloudProfile::AMAZON,
        CloudProfile::GOOGLE,
        CloudProfile::AZURE,
        CloudProfile::RACKSPACE,
    ];

    /// Returns `n` LAN profiles (the LAN testbed runs one CDStore server per
    /// machine, all on the same switch).
    pub fn lan_clouds(n: usize) -> Vec<CloudProfile> {
        vec![CloudProfile::LAN; n]
    }

    /// Mean bandwidth for the given direction in MB/s.
    pub fn bandwidth(&self, direction: Direction) -> f64 {
        match direction {
            Direction::Upload => self.upload_mbps,
            Direction::Download => self.download_mbps,
        }
    }

    /// Bandwidth standard deviation for the given direction in MB/s.
    pub fn bandwidth_std(&self, direction: Direction) -> f64 {
        match direction {
            Direction::Upload => self.upload_std,
            Direction::Download => self.download_std,
        }
    }

    /// The profile as [`cdstore_storage::Shaping`], for driving a
    /// [`cdstore_storage::FaultPlan`] with this cloud's Table 2 numbers —
    /// the chaos harness uses this to shape real wall-clock delays where the
    /// simulator only accounts simulated seconds.
    pub fn shaping(&self) -> cdstore_storage::Shaping {
        cdstore_storage::Shaping {
            latency_ms: self.latency_ms,
            upload_mbps: self.upload_mbps,
            download_mbps: self.download_mbps,
        }
    }

    /// Time in seconds to transfer `bytes` in one direction at the mean
    /// bandwidth, including one latency round trip per `unit_bytes` request
    /// (the client batches shares into 4 MB units, §4.1).
    pub fn transfer_seconds(&self, bytes: u64, direction: Direction, unit_bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let mb = bytes as f64 / (1024.0 * 1024.0);
        let requests = bytes.div_ceil(unit_bytes.max(1)) as f64;
        mb / self.bandwidth(direction) + requests * self.latency_ms / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_are_embedded() {
        assert_eq!(CloudProfile::AMAZON.upload_mbps, 5.87);
        assert_eq!(CloudProfile::GOOGLE.download_mbps, 4.45);
        assert_eq!(CloudProfile::AZURE.upload_mbps, 19.59);
        assert_eq!(CloudProfile::RACKSPACE.download_mbps, 12.93);
        assert_eq!(CloudProfile::COMMERCIAL_CLOUDS.len(), 4);
    }

    #[test]
    fn asia_clouds_are_slower_than_local_clouds() {
        // The paper's observation: the Singapore clouds (Amazon, Google) are
        // much slower from Hong Kong than the Hong Kong clouds.
        for asia in [&CloudProfile::AMAZON, &CloudProfile::GOOGLE] {
            for local in [&CloudProfile::AZURE, &CloudProfile::RACKSPACE] {
                assert!(asia.upload_mbps < local.upload_mbps / 2.0);
            }
        }
    }

    #[test]
    fn transfer_time_scales_with_size_and_bandwidth() {
        let four_mb = 4 * 1024 * 1024u64;
        let t_small = CloudProfile::LAN.transfer_seconds(four_mb, Direction::Upload, four_mb);
        let t_large = CloudProfile::LAN.transfer_seconds(four_mb * 10, Direction::Upload, four_mb);
        assert!(t_large > 9.0 * t_small && t_large < 11.0 * t_small);
        let t_slow = CloudProfile::GOOGLE.transfer_seconds(four_mb, Direction::Upload, four_mb);
        assert!(t_slow > 10.0 * t_small);
        assert_eq!(
            CloudProfile::LAN.transfer_seconds(0, Direction::Upload, four_mb),
            0.0
        );
    }

    #[test]
    fn lan_clouds_builder() {
        let clouds = CloudProfile::lan_clouds(4);
        assert_eq!(clouds.len(), 4);
        assert!(clouds.iter().all(|c| c.name == "LAN"));
    }

    #[test]
    fn effective_speed_approaches_nominal_for_large_transfers() {
        let bytes = 2u64 * 1024 * 1024 * 1024;
        let secs = CloudProfile::AZURE.transfer_seconds(bytes, Direction::Upload, 4 * 1024 * 1024);
        let effective = (bytes as f64 / (1024.0 * 1024.0)) / secs;
        assert!(
            (effective - CloudProfile::AZURE.upload_mbps).abs() / CloudProfile::AZURE.upload_mbps
                < 0.05
        );
    }
}
