//! A simulated multi-cloud environment for CDStore experiments.
//!
//! The paper evaluates CDStore on a LAN testbed and on four commercial
//! clouds (Amazon, Google, Azure, Rackspace — §5.1, Table 2). Neither
//! testbed is available to this reproduction, so this crate provides the
//! closest synthetic equivalent:
//!
//! * [`profile`] — per-cloud bandwidth/latency profiles seeded from the
//!   paper's Table 2 measurements, plus the 1 Gb/s LAN profile.
//! * [`flow`] — a max-min-fair fluid flow simulator that models concurrent
//!   transfers sharing links, disks, and CPU stages; used for the
//!   multi-client aggregate experiments (Figure 8).
//! * [`cloud`] — [`cloud::SimCloud`], one simulated cloud combining an object
//!   store, a bandwidth profile, and failure injection, and
//!   [`cloud::MultiCloud`], the set of `n` clouds a CDStore deployment spans.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cloud;
pub mod flow;
pub mod profile;

pub use cloud::{CloudError, MultiCloud, SimCloud};
pub use flow::{Flow, FlowSimulator, Resource};
pub use profile::{CloudProfile, Direction};
