//! A max-min-fair fluid flow simulator.
//!
//! The multi-client experiments (Figure 8) need a model of *concurrent*
//! transfers that share bottleneck resources: every CDStore client's upload
//! stream crosses the client's NIC, the receiving server's NIC, the server's
//! CPU (inter-user dedup fingerprinting), and the server's disk (container
//! writes). The standard fluid model allocates each flow a max-min fair rate
//! subject to per-resource capacities (progressive filling), advances virtual
//! time to the next flow completion, and repeats.

use std::collections::HashMap;

/// A capacity-constrained resource (a NIC, a disk, a CPU stage, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// Stable identifier used by flows to reference the resource.
    pub id: String,
    /// Capacity in MB/s shared by all flows crossing the resource.
    pub capacity_mbps: f64,
}

impl Resource {
    /// Creates a resource.
    pub fn new(id: impl Into<String>, capacity_mbps: f64) -> Self {
        Resource {
            id: id.into(),
            capacity_mbps,
        }
    }
}

/// A data flow crossing a set of resources.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// Stable identifier of the flow (used to read back results).
    pub id: String,
    /// Size of the flow in megabytes.
    pub size_mb: f64,
    /// Identifiers of every resource the flow crosses.
    pub resources: Vec<String>,
}

impl Flow {
    /// Creates a flow of `size_mb` megabytes crossing the given resources.
    pub fn new(id: impl Into<String>, size_mb: f64, resources: Vec<String>) -> Self {
        Flow {
            id: id.into(),
            size_mb,
            resources,
        }
    }
}

/// The result of simulating one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowResult {
    /// The flow identifier.
    pub id: String,
    /// Virtual time at which the flow finished, in seconds.
    pub completion_time: f64,
}

/// The fluid flow simulator.
#[derive(Debug, Default)]
pub struct FlowSimulator {
    resources: Vec<Resource>,
    flows: Vec<Flow>,
}

impl FlowSimulator {
    /// Creates an empty simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a resource. Later definitions with the same id override earlier
    /// ones.
    pub fn add_resource(&mut self, resource: Resource) -> &mut Self {
        self.resources.retain(|r| r.id != resource.id);
        self.resources.push(resource);
        self
    }

    /// Adds a flow.
    ///
    /// # Panics
    ///
    /// Panics if the flow references an unknown resource or has negative size.
    pub fn add_flow(&mut self, flow: Flow) -> &mut Self {
        assert!(flow.size_mb >= 0.0, "flow size must be non-negative");
        for r in &flow.resources {
            assert!(
                self.resources.iter().any(|res| &res.id == r),
                "flow {} references unknown resource {r}",
                flow.id
            );
        }
        self.flows.push(flow);
        self
    }

    /// Computes max-min fair rates (MB/s) for the given remaining flows.
    fn fair_rates(&self, active: &[usize]) -> Vec<f64> {
        let mut rates = vec![0.0f64; active.len()];
        let mut frozen = vec![false; active.len()];
        let mut remaining_capacity: HashMap<&str, f64> = self
            .resources
            .iter()
            .map(|r| (r.id.as_str(), r.capacity_mbps))
            .collect();
        loop {
            // Count unfrozen flows crossing each resource.
            let mut users: HashMap<&str, usize> = HashMap::new();
            for (slot, &flow_idx) in active.iter().enumerate() {
                if frozen[slot] {
                    continue;
                }
                for r in &self.flows[flow_idx].resources {
                    *users.entry(r.as_str()).or_insert(0) += 1;
                }
            }
            if users.is_empty() {
                break;
            }
            // The bottleneck resource limits the per-flow fair share most.
            let (bottleneck, share) = users
                .iter()
                .map(|(rid, &count)| (*rid, remaining_capacity[rid] / count as f64))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite shares"))
                .expect("at least one resource in use");
            // Freeze every unfrozen flow crossing the bottleneck at `share`.
            for (slot, &flow_idx) in active.iter().enumerate() {
                if frozen[slot] {
                    continue;
                }
                if self.flows[flow_idx]
                    .resources
                    .iter()
                    .any(|r| r == bottleneck)
                {
                    rates[slot] = share;
                    frozen[slot] = true;
                    for r in &self.flows[flow_idx].resources {
                        if let Some(cap) = remaining_capacity.get_mut(r.as_str()) {
                            *cap = (*cap - share).max(0.0);
                        }
                    }
                }
            }
        }
        rates
    }

    /// Runs the simulation, returning per-flow completion times (seconds).
    pub fn run(&self) -> Vec<FlowResult> {
        let mut remaining: Vec<f64> = self.flows.iter().map(|f| f.size_mb).collect();
        let mut completion = vec![0.0f64; self.flows.len()];
        let mut now = 0.0f64;
        loop {
            let active: Vec<usize> = remaining
                .iter()
                .enumerate()
                .filter(|(_, &r)| r > 1e-12)
                .map(|(i, _)| i)
                .collect();
            if active.is_empty() {
                break;
            }
            let rates = self.fair_rates(&active);
            // Time until the first active flow completes at these rates.
            let mut dt = f64::INFINITY;
            for (slot, &idx) in active.iter().enumerate() {
                if rates[slot] > 1e-12 {
                    dt = dt.min(remaining[idx] / rates[slot]);
                }
            }
            if !dt.is_finite() {
                // No flow can make progress (all rates zero): report the
                // stalled flows as never completing.
                for &idx in &active {
                    completion[idx] = f64::INFINITY;
                }
                break;
            }
            now += dt;
            for (slot, &idx) in active.iter().enumerate() {
                remaining[idx] = (remaining[idx] - rates[slot] * dt).max(0.0);
                if remaining[idx] <= 1e-9 {
                    remaining[idx] = 0.0;
                    completion[idx] = now;
                }
            }
        }
        self.flows
            .iter()
            .zip(completion)
            .map(|(f, t)| FlowResult {
                id: f.id.clone(),
                completion_time: t,
            })
            .collect()
    }

    /// Convenience: runs the simulation and returns the time at which every
    /// flow has completed (the makespan).
    pub fn makespan(&self) -> f64 {
        self.run()
            .into_iter()
            .map(|r| r.completion_time)
            .fold(0.0, f64::max)
    }

    /// Convenience: aggregate throughput in MB/s = total bytes / makespan.
    pub fn aggregate_throughput(&self) -> f64 {
        let total: f64 = self.flows.iter().map(|f| f.size_mb).sum();
        let makespan = self.makespan();
        if makespan <= 0.0 {
            0.0
        } else {
            total / makespan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_single_link() {
        let mut sim = FlowSimulator::new();
        sim.add_resource(Resource::new("link", 100.0));
        sim.add_flow(Flow::new("f1", 500.0, vec!["link".into()]));
        let results = sim.run();
        assert_eq!(results.len(), 1);
        assert!((results[0].completion_time - 5.0).abs() < 1e-9);
        assert!((sim.aggregate_throughput() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let mut sim = FlowSimulator::new();
        sim.add_resource(Resource::new("link", 100.0));
        sim.add_flow(Flow::new("a", 100.0, vec!["link".into()]));
        sim.add_flow(Flow::new("b", 200.0, vec!["link".into()]));
        let results = sim.run();
        // Both run at 50 MB/s; "a" finishes at 2 s, then "b" gets the full
        // link for its remaining 100 MB: 2 + 1 = 3 s.
        assert!((results[0].completion_time - 2.0).abs() < 1e-9);
        assert!((results[1].completion_time - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_is_the_slowest_resource_on_the_path() {
        let mut sim = FlowSimulator::new();
        sim.add_resource(Resource::new("client-nic", 110.0));
        sim.add_resource(Resource::new("server-disk", 40.0));
        sim.add_flow(Flow::new(
            "upload",
            400.0,
            vec!["client-nic".into(), "server-disk".into()],
        ));
        assert!((sim.makespan() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn independent_flows_do_not_interfere() {
        let mut sim = FlowSimulator::new();
        sim.add_resource(Resource::new("l1", 50.0));
        sim.add_resource(Resource::new("l2", 50.0));
        sim.add_flow(Flow::new("a", 100.0, vec!["l1".into()]));
        sim.add_flow(Flow::new("b", 100.0, vec!["l2".into()]));
        let results = sim.run();
        assert!((results[0].completion_time - 2.0).abs() < 1e-9);
        assert!((results[1].completion_time - 2.0).abs() < 1e-9);
        assert!((sim.aggregate_throughput() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn aggregate_throughput_saturates_at_shared_bottleneck() {
        // Eight clients with fast NICs all writing through one 300 MB/s
        // server stage: the aggregate cannot exceed 300 MB/s.
        let mut sim = FlowSimulator::new();
        sim.add_resource(Resource::new("server", 300.0));
        for i in 0..8 {
            sim.add_resource(Resource::new(format!("client-{i}"), 110.0));
            sim.add_flow(Flow::new(
                format!("flow-{i}"),
                2048.0,
                vec![format!("client-{i}"), "server".into()],
            ));
        }
        let agg = sim.aggregate_throughput();
        assert!((agg - 300.0).abs() < 1.0, "aggregate {agg}");
    }

    #[test]
    fn aggregate_scales_with_clients_until_saturation() {
        // Reproduces the *shape* of Figure 8: aggregate grows with the number
        // of clients and then flattens at the server-side bottleneck.
        let per_client = 110.0;
        let server_total = 330.0;
        let mut last = 0.0;
        let mut speeds = Vec::new();
        for clients in 1..=8usize {
            let mut sim = FlowSimulator::new();
            sim.add_resource(Resource::new("servers", server_total));
            for i in 0..clients {
                sim.add_resource(Resource::new(format!("client-{i}"), per_client));
                sim.add_flow(Flow::new(
                    format!("f{i}"),
                    2048.0,
                    vec![format!("client-{i}"), "servers".into()],
                ));
            }
            let agg = sim.aggregate_throughput();
            assert!(agg >= last - 1e-6, "aggregate must be non-decreasing");
            last = agg;
            speeds.push(agg);
        }
        assert!(speeds[0] < 120.0);
        assert!((speeds[7] - server_total).abs() < 1.0);
    }

    #[test]
    fn zero_size_flows_complete_immediately() {
        let mut sim = FlowSimulator::new();
        sim.add_resource(Resource::new("link", 10.0));
        sim.add_flow(Flow::new("empty", 0.0, vec!["link".into()]));
        let results = sim.run();
        assert_eq!(results[0].completion_time, 0.0);
    }

    #[test]
    fn zero_capacity_resources_stall_flows() {
        let mut sim = FlowSimulator::new();
        sim.add_resource(Resource::new("dead", 0.0));
        sim.add_flow(Flow::new("stuck", 10.0, vec!["dead".into()]));
        assert!(sim.run()[0].completion_time.is_infinite());
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn flows_must_reference_known_resources() {
        let mut sim = FlowSimulator::new();
        sim.add_flow(Flow::new("f", 1.0, vec!["missing".into()]));
    }
}
