//! Criterion micro-benchmarks of the substrates: GF(2^8) region operations,
//! Reed-Solomon coding, the cryptographic primitives, and chunking. These
//! back the encoding-speed figures: §5.3 argues that Reed-Solomon coding is
//! cheap relative to the AONT's cryptographic operations, which these
//! benchmarks let us verify directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const BUF_SIZE: usize = 1 << 20;

fn bench_gf_region_ops(c: &mut Criterion) {
    let src: Vec<u8> = (0..BUF_SIZE).map(|i| (i * 31 % 256) as u8).collect();
    let mut dst = vec![0u8; BUF_SIZE];
    let mut group = c.benchmark_group("gf_region");
    group.throughput(Throughput::Bytes(BUF_SIZE as u64));
    group.bench_function("xor_into", |b| {
        b.iter(|| cdstore_gf::region::xor_into(&mut dst, &src))
    });
    group.bench_function("mul_acc", |b| {
        b.iter(|| cdstore_gf::region::mul_acc(&mut dst, &src, 0x57))
    });
    group.finish();
}

fn bench_reed_solomon(c: &mut Criterion) {
    let data: Vec<u8> = (0..BUF_SIZE).map(|i| (i * 7 % 256) as u8).collect();
    let mut group = c.benchmark_group("reed_solomon");
    group.throughput(Throughput::Bytes(BUF_SIZE as u64));
    for &(n, k) in &[(4usize, 3usize), (8, 6), (16, 12)] {
        let rs = cdstore_erasure::ReedSolomon::new(n, k).unwrap();
        group.bench_with_input(
            BenchmarkId::new("encode", format!("n{n}_k{k}")),
            &rs,
            |b, rs| b.iter(|| rs.encode_data(&data).unwrap()),
        );
    }
    let rs = cdstore_erasure::ReedSolomon::new(4, 3).unwrap();
    let shards = rs.encode_data(&data).unwrap();
    let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    received[0] = None;
    group.bench_function("decode_one_erasure_n4_k3", |b| {
        b.iter(|| rs.reconstruct_data(&received, data.len()).unwrap())
    });
    group.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let data: Vec<u8> = (0..BUF_SIZE).map(|i| (i % 251) as u8).collect();
    let mut group = c.benchmark_group("crypto");
    group.throughput(Throughput::Bytes(BUF_SIZE as u64));
    group.bench_function("sha256", |b| b.iter(|| cdstore_crypto::sha256::hash(&data)));
    group.bench_function("sha1", |b| b.iter(|| cdstore_crypto::sha1::hash(&data)));
    let key = [7u8; 32];
    group.bench_function("aes256_ctr", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            cdstore_crypto::ctr::Aes256Ctr::new(&key, 0).apply_keystream(&mut buf, 0);
            buf
        })
    });
    group.bench_function("caont_generator_mask", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            cdstore_crypto::ctr::apply_generator_mask(&key, &mut buf);
            buf
        })
    });
    group.finish();
}

fn bench_chunking(c: &mut Criterion) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let data: Vec<u8> = (0..(4 << 20)).map(|_| rng.gen()).collect();
    let mut group = c.benchmark_group("chunking");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(20);
    group.bench_function("rabin_8k", |b| {
        let chunker = cdstore_chunking::RabinChunker::default();
        b.iter(|| cdstore_chunking::Chunker::chunk(&chunker, &data))
    });
    group.bench_function("fixed_4k", |b| {
        let chunker = cdstore_chunking::FixedChunker::new(4096);
        b.iter(|| cdstore_chunking::Chunker::chunk(&chunker, &data))
    });
    group.finish();
}

criterion_group!(
    name = substrates;
    config = Criterion::default().sample_size(30);
    targets = bench_gf_region_ops, bench_reed_solomon, bench_crypto, bench_chunking
);
criterion_main!(substrates);
