//! Criterion benchmarks of the server-side substrates: the LSM key-value
//! store (LevelDB substitute), the share index, and container storage. These
//! quantify the index/metadata costs that the cost model (§5.6) sizes EC2
//! instances for.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cdstore_crypto::Fingerprint;
use cdstore_index::{KvStore, ShareIndex, ShareLocation};
use cdstore_storage::{ContainerStore, MemoryBackend};

fn bench_kvstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvstore");
    group.throughput(Throughput::Elements(1));
    group.bench_function("put", |b| {
        let mut store = KvStore::new();
        let mut i = 0u64;
        b.iter(|| {
            store.put(i.to_be_bytes().to_vec(), vec![0u8; 64]);
            i += 1;
        })
    });
    group.bench_function("get_hit", |b| {
        let mut store = KvStore::new();
        for i in 0..100_000u64 {
            store.put(i.to_be_bytes().to_vec(), vec![0u8; 64]);
        }
        let mut i = 0u64;
        b.iter(|| {
            let v = store.get(&(i % 100_000).to_be_bytes());
            i += 1;
            v
        })
    });
    group.bench_function("get_miss_bloom_filtered", |b| {
        let mut store = KvStore::new();
        for i in 0..100_000u64 {
            store.put(i.to_be_bytes().to_vec(), vec![0u8; 64]);
        }
        store.flush();
        let mut i = 1_000_000u64;
        b.iter(|| {
            let v = store.get(&i.to_be_bytes());
            i += 1;
            v
        })
    });
    group.finish();
}

fn bench_share_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("share_index");
    group.throughput(Throughput::Elements(1));
    group.bench_function("add_reference_new", |b| {
        let mut index = ShareIndex::new();
        let mut i = 0u64;
        b.iter(|| {
            let fp = Fingerprint::of(&i.to_be_bytes());
            index.add_reference(
                &fp,
                ShareLocation {
                    container_id: i,
                    offset: 0,
                    size: 2752,
                },
                i % 9,
            );
            i += 1;
        })
    });
    group.bench_function("dedup_lookup", |b| {
        let mut index = ShareIndex::new();
        for i in 0..50_000u64 {
            let fp = Fingerprint::of(&i.to_be_bytes());
            index.add_reference(
                &fp,
                ShareLocation {
                    container_id: i,
                    offset: 0,
                    size: 2752,
                },
                1,
            );
        }
        let mut i = 0u64;
        b.iter(|| {
            let fp = Fingerprint::of(&(i % 100_000).to_be_bytes());
            let hit = index.is_stored(&fp);
            i += 1;
            hit
        })
    });
    group.finish();
}

fn bench_container_store(c: &mut Criterion) {
    let share = vec![0x5au8; 2752];
    let mut group = c.benchmark_group("container_store");
    group.throughput(Throughput::Bytes(share.len() as u64));
    group.bench_function("store_share", |b| {
        let store = ContainerStore::new(Arc::new(MemoryBackend::new()));
        let mut i = 0u64;
        b.iter(|| {
            let fp = Fingerprint::of(&i.to_be_bytes());
            i += 1;
            store.store_share(1, fp, &share).unwrap()
        })
    });
    group.bench_function("fetch_cached", |b| {
        let store = ContainerStore::new(Arc::new(MemoryBackend::new()));
        let fp = Fingerprint::of(b"hot share");
        let loc = store.store_share(1, fp, &share).unwrap();
        store.flush().unwrap();
        b.iter(|| store.fetch(&loc).unwrap())
    });
    group.finish();
}

criterion_group!(
    name = dedup_index;
    config = Criterion::default().sample_size(30);
    targets = bench_kvstore, bench_share_index, bench_container_store
);
criterion_main!(dedup_index);
