//! Criterion benchmarks of the secret-sharing schemes themselves: per-scheme
//! split/reconstruct throughput (Table 1's schemes plus the convergent
//! variants), and the CAONT-RS ablations behind Figure 5 (OAEP vs Rivest
//! AONT, hash key vs random key, and the Reed-Solomon share of the cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cdstore_secretsharing::{build_scheme, SchemeKind, SecretSharing};

const SECRET_SIZE: usize = 8 * 1024;

fn secret() -> Vec<u8> {
    (0..SECRET_SIZE).map(|i| (i * 131 % 256) as u8).collect()
}

fn bench_split_all_schemes(c: &mut Criterion) {
    let data = secret();
    let mut group = c.benchmark_group("split_8k_secret");
    group.throughput(Throughput::Bytes(SECRET_SIZE as u64));
    for kind in SchemeKind::ALL {
        // SSSS is orders of magnitude slower (byte-wise polynomial sharing);
        // keep it but with fewer samples via the global config.
        let scheme = build_scheme(kind, 4, 3, None).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &scheme,
            |b, s| b.iter(|| s.split(&data).unwrap()),
        );
    }
    group.finish();
}

fn bench_reconstruct_caont_rs(c: &mut Criterion) {
    let data = secret();
    let scheme = build_scheme(SchemeKind::CaontRs, 4, 3, None).unwrap();
    let shares = scheme.split(&data).unwrap();
    let mut group = c.benchmark_group("reconstruct_8k_secret");
    group.throughput(Throughput::Bytes(SECRET_SIZE as u64));
    let all: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
    group.bench_function("CAONT-RS_all_shares", |b| {
        b.iter(|| scheme.reconstruct(&all, data.len()).unwrap())
    });
    let mut degraded = all.clone();
    degraded[0] = None;
    group.bench_function("CAONT-RS_one_erasure", |b| {
        b.iter(|| scheme.reconstruct(&degraded, data.len()).unwrap())
    });
    group.finish();
}

fn bench_caont_ablation(c: &mut Criterion) {
    // Ablation: isolate the AONT package construction (crypto cost) from the
    // full split (crypto + Reed-Solomon) to show RS is the minor component.
    let data = secret();
    let caont = cdstore_secretsharing::CaontRs::new(4, 3).unwrap();
    let mut group = c.benchmark_group("caont_ablation");
    group.throughput(Throughput::Bytes(SECRET_SIZE as u64));
    group.bench_function("package_only", |b| b.iter(|| caont.build_package(&data)));
    group.bench_function("package_plus_rs", |b| {
        b.iter(|| caont.split(&data).unwrap())
    });
    let rs = cdstore_erasure::ReedSolomon::new(4, 3).unwrap();
    let package = caont.build_package(&data);
    group.bench_function("rs_only", |b| b.iter(|| rs.encode_data(&package).unwrap()));
    group.finish();
}

criterion_group!(
    name = encoding;
    config = Criterion::default().sample_size(30);
    targets = bench_split_all_schemes, bench_reconstruct_caont_rs, bench_caont_ablation
);
criterion_main!(encoding);
