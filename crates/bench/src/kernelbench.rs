//! Measurement helpers for the low-level encode kernels: the GF(2^8) region
//! primitives (`xor_into`, `mul_into`, `mul_acc`) and SHA-256, per backend.
//!
//! Used by the `bench_kernels` binary (perf trajectory `BENCH_kernels.json`).
//! Every backend reported by [`Backend::available()`] is measured over the
//! same buffers, so the scalar row doubles as the baseline for the speedup
//! columns.

use std::time::Instant;

use cdstore_crypto::sha256;
use cdstore_gf::region::Backend;

use crate::MB;

/// Throughput of one measured kernel on one backend.
#[derive(Debug, Clone)]
pub struct KernelSpeed {
    /// Backend name (`scalar`, `ssse3`, `avx2`, `neon`, `sha-ni`).
    pub backend: &'static str,
    /// Median throughput in MB/s of region bytes processed.
    pub mbps: f64,
}

fn fill_deterministic(buf: &mut [u8], mut seed: u64) {
    for b in buf.iter_mut() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        *b = (seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8;
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
    samples[samples.len() / 2]
}

/// Measures `op` over `reps` timed repetitions (after one warmup) of a
/// `region_len`-byte pass and returns the median MB/s.
fn measure<F: FnMut()>(region_len: usize, reps: usize, mut op: F) -> f64 {
    op(); // warmup: fault pages in, settle the dispatch
    let samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            op();
            region_len as f64 / MB / start.elapsed().as_secs_f64()
        })
        .collect();
    median(samples)
}

/// Measures one GF region kernel (`"xor"`, `"mul"`, or `"mul_acc"`) on one
/// backend: `reps` timed passes over a `region_len`-byte region, median MB/s.
pub fn gf_kernel_speed(backend: Backend, kernel: &str, region_len: usize, reps: usize) -> f64 {
    let mut src = vec![0u8; region_len];
    let mut dst = vec![0u8; region_len];
    fill_deterministic(&mut src, 0x9E37_79B9_7F4A_7C15);
    fill_deterministic(&mut dst, 0xD1B5_4A32_D192_ED03);
    // An arbitrary multiplier > 1 so the shuffle path is exercised (0 and 1
    // short-circuit before backend dispatch).
    let c = 0x1d;
    let mbps = measure(region_len, reps, || match kernel {
        "xor" => backend.xor_into(&mut dst, &src),
        "mul" => backend.mul_into(&mut dst, &src, c),
        "mul_acc" => backend.mul_acc(&mut dst, &src, c),
        other => panic!("unknown kernel {other}"),
    });
    std::hint::black_box(&dst);
    mbps
}

/// Measures single-message SHA-256 throughput on one backend: `reps` hashes
/// of one `msg_len`-byte message, median MB/s.
pub fn sha_single_speed(backend: sha256::Backend, msg_len: usize, reps: usize) -> f64 {
    let mut msg = vec![0u8; msg_len];
    fill_deterministic(&mut msg, 0xA076_1D64_78BD_642F);
    let mut sink = [0u8; 32];
    let mbps = measure(msg_len, reps, || {
        sink = sha256::hash_with(backend, &msg);
    });
    std::hint::black_box(sink);
    mbps
}

/// Measures batched SHA-256 throughput on one backend: `reps` batch calls
/// over `lanes` messages of `msg_len` bytes each, median MB/s of total bytes.
/// On scalar hosts this is the 4-lane interleaved scheduler; on SHA-NI hosts
/// the hardware path per message.
pub fn sha_batch_speed(backend: sha256::Backend, msg_len: usize, lanes: usize, reps: usize) -> f64 {
    let mut flat = vec![0u8; msg_len * lanes];
    fill_deterministic(&mut flat, 0xE703_7ED1_A0B4_28DB);
    let msgs: Vec<&[u8]> = flat.chunks(msg_len).collect();
    let mut sink = 0u8;
    let mbps = measure(msg_len * lanes, reps, || {
        let digests = sha256::hash_batch_with(backend, &msgs);
        sink ^= digests[0][0];
    });
    std::hint::black_box(sink);
    mbps
}

/// Runs one GF kernel across all available backends.
pub fn gf_kernel_all_backends(kernel: &str, region_len: usize, reps: usize) -> Vec<KernelSpeed> {
    Backend::available()
        .into_iter()
        .map(|b| KernelSpeed {
            backend: b.name(),
            mbps: gf_kernel_speed(b, kernel, region_len, reps),
        })
        .collect()
}
