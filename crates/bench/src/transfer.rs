//! The transfer-performance model behind Figures 7 and 8.
//!
//! The paper measures upload/download speeds on a 1 Gb/s LAN testbed and on
//! four commercial clouds. This reproduction replaces the testbeds with a
//! model that combines:
//!
//! * the *measured* client-side computation speed (chunking + CAONT-RS
//!   encoding, or decoding) on the machine running the benchmark;
//! * the *simulated* network, using the per-cloud bandwidth profiles of
//!   Table 2 and the max-min-fair fluid flow simulator for shared links; and
//! * a server-side disk stage for container writes and a server-side
//!   processing stage for deduplication metadata handling.
//!
//! Uploads and downloads are pipelined (chunking/encoding overlaps with the
//! network transfer), so the end-to-end speed is governed by the slower of
//! the computation and transfer stages.

use cdstore_cloudsim::{CloudProfile, Direction, Flow, FlowSimulator, Resource};

/// Effective read penalty of fetching containers from the server's disk
/// backend before returning shares (§5.5 reports ~10% below network speed).
pub const DOWNLOAD_BACKEND_PENALTY: f64 = 0.10;

/// Per-server disk write bandwidth for sealed containers (MB/s). The paper's
/// LAN servers use a single 7200 RPM SATA disk.
pub const SERVER_DISK_MBPS: f64 = 95.0;

/// Per-server capacity for processing deduplication metadata (fingerprint
/// lookups, index updates) in MB/s of logical data. Four servers together
/// bound the duplicate-data aggregate near the paper's ~570 MB/s plateau.
pub const SERVER_DEDUP_MBPS: f64 = 143.0;

/// A single-client transfer scenario.
#[derive(Debug, Clone)]
pub struct SingleClientModel {
    /// Per-cloud bandwidth profiles (length `n`).
    pub profiles: Vec<CloudProfile>,
    /// Reconstruction threshold `k` (downloads contact `k` clouds).
    pub k: usize,
    /// Client NIC capacity in MB/s (the LAN client's 1 Gb/s port, or the
    /// WAN uplink for the cloud testbed).
    pub client_nic_mbps: f64,
    /// Measured client computation speed (chunking + encoding) in MB/s.
    pub compute_mbps: f64,
}

impl SingleClientModel {
    /// The LAN testbed: `n` servers on a 1 Gb/s switch.
    pub fn lan(n: usize, k: usize, compute_mbps: f64) -> Self {
        SingleClientModel {
            profiles: CloudProfile::lan_clouds(n),
            k,
            client_nic_mbps: 110.0,
            compute_mbps,
        }
    }

    /// The commercial-cloud testbed (Amazon, Google, Azure, Rackspace): the
    /// WAN links are the bottleneck, so the client NIC is effectively
    /// unconstrained.
    pub fn commercial(k: usize, compute_mbps: f64) -> Self {
        SingleClientModel {
            profiles: CloudProfile::COMMERCIAL_CLOUDS.to_vec(),
            k,
            client_nic_mbps: 1000.0,
            compute_mbps,
        }
    }

    fn network_seconds(&self, per_cloud_mb: &[f64], direction: Direction) -> f64 {
        let mut sim = FlowSimulator::new();
        sim.add_resource(Resource::new("client-nic", self.client_nic_mbps));
        for (i, profile) in self.profiles.iter().enumerate() {
            sim.add_resource(Resource::new(
                format!("cloud-{i}"),
                profile.bandwidth(direction),
            ));
        }
        for (i, &mb) in per_cloud_mb.iter().enumerate() {
            if mb > 0.0 {
                sim.add_flow(Flow::new(
                    format!("flow-{i}"),
                    mb,
                    vec!["client-nic".into(), format!("cloud-{i}")],
                ));
            }
        }
        sim.makespan()
    }

    /// Upload speed (MB/s of logical data) when `transferred_per_cloud_mb`
    /// share bytes actually cross the network after intra-user deduplication.
    pub fn upload_speed(&self, logical_mb: f64, transferred_per_cloud_mb: &[f64]) -> f64 {
        if logical_mb <= 0.0 {
            return 0.0;
        }
        let compute_seconds = logical_mb / self.compute_mbps;
        let network_seconds = self.network_seconds(transferred_per_cloud_mb, Direction::Upload);
        logical_mb / compute_seconds.max(network_seconds)
    }

    /// Download speed (MB/s of logical data) when the shares are fetched
    /// from the fastest `k` clouds.
    pub fn download_speed(&self, logical_mb: f64, decode_mbps: f64) -> f64 {
        if logical_mb <= 0.0 {
            return 0.0;
        }
        // Choose the k fastest download clouds, as a client would.
        let mut order: Vec<usize> = (0..self.profiles.len()).collect();
        order.sort_by(|&a, &b| {
            self.profiles[b]
                .download_mbps
                .partial_cmp(&self.profiles[a].download_mbps)
                .expect("finite bandwidths")
        });
        let chosen = &order[..self.k.min(order.len())];
        let share_mb = logical_mb / self.k as f64;
        let mut per_cloud = vec![0.0; self.profiles.len()];
        for &i in chosen {
            per_cloud[i] = share_mb;
        }
        let network_seconds = self.network_seconds(&per_cloud, Direction::Download)
            * (1.0 + DOWNLOAD_BACKEND_PENALTY);
        let compute_seconds = logical_mb / decode_mbps;
        logical_mb / compute_seconds.max(network_seconds)
    }
}

/// The multi-client aggregate-upload scenario of Figure 8 (LAN testbed).
#[derive(Debug, Clone)]
pub struct MultiClientModel {
    /// Number of clouds / servers.
    pub n: usize,
    /// Reconstruction threshold.
    pub k: usize,
    /// Per-client NIC capacity in MB/s.
    pub client_nic_mbps: f64,
    /// Per-server NIC capacity in MB/s.
    pub server_nic_mbps: f64,
    /// Per-client computation speed in MB/s.
    pub compute_mbps: f64,
}

impl MultiClientModel {
    /// The LAN testbed configuration with a measured per-client compute speed.
    pub fn lan(n: usize, k: usize, compute_mbps: f64) -> Self {
        MultiClientModel {
            n,
            k,
            client_nic_mbps: 110.0,
            server_nic_mbps: 110.0,
            compute_mbps,
        }
    }

    /// Aggregate upload speed (MB/s of logical data) for `clients` concurrent
    /// clients each uploading `logical_mb_each` of *unique* data.
    pub fn aggregate_unique_upload(&self, clients: usize, logical_mb_each: f64) -> f64 {
        if clients == 0 || logical_mb_each <= 0.0 {
            return 0.0;
        }
        let mut sim = FlowSimulator::new();
        for c in 0..clients {
            sim.add_resource(Resource::new(format!("client-{c}"), self.client_nic_mbps));
        }
        for s in 0..self.n {
            sim.add_resource(Resource::new(
                format!("server-nic-{s}"),
                self.server_nic_mbps,
            ));
            sim.add_resource(Resource::new(format!("server-disk-{s}"), SERVER_DISK_MBPS));
        }
        // Each client sends one share stream (logical/k MB) to every server.
        let per_cloud_mb = logical_mb_each / self.k as f64;
        for c in 0..clients {
            for s in 0..self.n {
                sim.add_flow(Flow::new(
                    format!("c{c}-s{s}"),
                    per_cloud_mb,
                    vec![
                        format!("client-{c}"),
                        format!("server-nic-{s}"),
                        format!("server-disk-{s}"),
                    ],
                ));
            }
        }
        let network_seconds = sim.makespan();
        let compute_seconds = logical_mb_each / self.compute_mbps;
        let total_mb = logical_mb_each * clients as f64;
        total_mb / network_seconds.max(compute_seconds)
    }

    /// Aggregate upload speed for `clients` clients each re-uploading
    /// `logical_mb_each` of *duplicate* data: no share bytes cross the
    /// network, so the bottlenecks are the clients' chunk/encode stage and
    /// the servers' deduplication-metadata processing.
    pub fn aggregate_duplicate_upload(&self, clients: usize, logical_mb_each: f64) -> f64 {
        if clients == 0 || logical_mb_each <= 0.0 {
            return 0.0;
        }
        let client_bound = clients as f64 * self.compute_mbps;
        let server_bound = self.n as f64 * SERVER_DEDUP_MBPS;
        client_bound.min(server_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_unique_upload_is_about_k_over_n_of_the_network_speed() {
        // §5.5: 77 MB/s against a ~110 MB/s effective network with (4, 3) and
        // a compute stage much faster than the network.
        let model = SingleClientModel::lan(4, 3, 1000.0);
        let per_cloud = vec![2048.0 / 3.0; 4];
        let speed = model.upload_speed(2048.0, &per_cloud);
        let expected = 110.0 * 3.0 / 4.0;
        assert!((speed - expected).abs() < 5.0, "speed {speed}");
    }

    #[test]
    fn lan_duplicate_upload_is_compute_bound() {
        let model = SingleClientModel::lan(4, 3, 150.0);
        let speed = model.upload_speed(2048.0, &[0.0; 4]);
        assert!((speed - 150.0).abs() < 1.0);
    }

    #[test]
    fn lan_download_is_slightly_below_network_speed() {
        // §5.5: ~99 MB/s, about 10% below the 110 MB/s effective speed.
        let model = SingleClientModel::lan(4, 3, 1000.0);
        let speed = model.download_speed(2048.0, 1000.0);
        assert!((speed - 100.0).abs() < 5.0, "speed {speed}");
    }

    #[test]
    fn cloud_upload_is_limited_by_the_slowest_needed_cloud() {
        // The cloud testbed uploads n shares in parallel; the slow Singapore
        // clouds dominate, yielding single-digit MB/s as in Figure 7(a).
        let model = SingleClientModel::commercial(3, 150.0);
        let per_cloud: Vec<f64> = (0..4).map(|_| 2048.0 / 3.0).collect();
        let speed = model.upload_speed(2048.0, &per_cloud);
        assert!(speed > 3.0 && speed < 20.0, "speed {speed}");
        // Duplicate upload skips the WAN entirely and is far faster (the
        // paper reports a > 9x gap on the cloud testbed).
        let dup = model.upload_speed(2048.0, &[0.0; 4]);
        assert!(dup / speed > 5.0, "gap {}", dup / speed);
    }

    #[test]
    fn cloud_download_uses_the_fastest_k_clouds() {
        let model = SingleClientModel::commercial(3, 1000.0);
        let speed = model.download_speed(2048.0, 1000.0);
        // Azure + Rackspace + one Singapore cloud; the slowest of the three
        // is ~4.45 MB/s serving a third of the data.
        assert!(speed > 5.0 && speed < 40.0, "speed {speed}");
    }

    #[test]
    fn aggregate_unique_upload_scales_then_saturates() {
        let model = MultiClientModel::lan(4, 3, 150.0);
        let mut last = 0.0;
        let mut speeds = Vec::new();
        for clients in 1..=8 {
            let agg = model.aggregate_unique_upload(clients, 2048.0);
            assert!(agg >= last - 1e-6, "aggregate must not decrease");
            last = agg;
            speeds.push(agg);
        }
        // One client is bounded by its own NIC / compute; eight clients are
        // bounded by the servers (disk + NIC), around 280-330 MB/s.
        assert!(speeds[0] <= 110.0 + 1.0);
        assert!(
            speeds[7] > 250.0 && speeds[7] < 340.0,
            "8 clients: {}",
            speeds[7]
        );
    }

    #[test]
    fn aggregate_duplicate_upload_saturates_at_server_dedup_capacity() {
        let model = MultiClientModel::lan(4, 3, 150.0);
        let four = model.aggregate_duplicate_upload(4, 2048.0);
        let eight = model.aggregate_duplicate_upload(8, 2048.0);
        assert!((four - 570.0).abs() < 31.0, "four clients {four}");
        assert!((eight - 572.0).abs() < 1.0, "eight clients {eight}");
        assert!(model.aggregate_duplicate_upload(1, 2048.0) <= 151.0);
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let model = SingleClientModel::lan(4, 3, 100.0);
        assert_eq!(model.upload_speed(0.0, &[0.0; 4]), 0.0);
        assert_eq!(model.download_speed(0.0, 100.0), 0.0);
        let multi = MultiClientModel::lan(4, 3, 100.0);
        assert_eq!(multi.aggregate_unique_upload(0, 100.0), 0.0);
        assert_eq!(multi.aggregate_duplicate_upload(0, 100.0), 0.0);
    }
}
