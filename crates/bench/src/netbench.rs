//! Loopback-TCP measurement helpers: the networked columns of fig7/fig8 and
//! the perf-trajectory harness (`bench_net` → `BENCH_net.json`).
//!
//! Every helper spawns a fresh [`LoopbackCluster`] — real sockets, real
//! serialization, real flow control, no process-spawn cost — so the wire
//! columns answer "what does the TCP boundary cost?" next to the in-process
//! columns' "what does the computation cost?".

use std::sync::Barrier;
use std::time::Instant;

use cdstore_core::{CdStore, CdStoreConfig, ServerTransport, ShareMetadata};
use cdstore_crypto::Fingerprint;
use cdstore_net::{LoopbackCluster, NetClientConfig, RemoteServer};

use crate::{random_secrets, MB};

/// Spawns `n` wire-protocol servers on loopback and a [`CdStore`] deployment
/// speaking to them over TCP. Keep the cluster alive as long as the store:
/// dropping it shuts the servers down.
pub fn wire_store(n: usize, k: usize) -> (LoopbackCluster, CdStore<RemoteServer>) {
    let cluster = LoopbackCluster::spawn(n).expect("spawn loopback servers");
    let store = cluster
        .store(
            CdStoreConfig::new(n, k).expect("valid (n, k)"),
            NetClientConfig::default(),
        )
        .expect("connect to loopback servers");
    (cluster, store)
}

/// Aggregate logical MB/s of `clients` concurrent threads each backing up
/// `per_client` bytes through `store` — the fig8 measurement, generic over
/// the transport so the in-process and over-the-wire columns run the exact
/// same protocol. With `duplicate`, every user's data is seeded outside the
/// timed region so the measured backups ride the intra-user dedup path.
pub fn aggregate_upload<T: ServerTransport>(
    store: &CdStore<T>,
    clients: usize,
    per_client: usize,
    duplicate: bool,
) -> f64 {
    let payloads: Vec<Vec<u8>> = (0..clients)
        .map(|c| random_secrets(per_client, 8 * 1024, 100 + c as u64).concat())
        .collect();
    if duplicate {
        for (c, payload) in payloads.iter().enumerate() {
            store
                .backup(c as u64 + 1, &format!("/client-{c}/seed.tar"), payload)
                .expect("seed backup succeeds");
        }
    }
    let barrier = Barrier::new(clients);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (c, payload) in payloads.iter().enumerate() {
            let store = store.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                store
                    .backup(c as u64 + 1, &format!("/client-{c}/backup.tar"), payload)
                    .expect("backup succeeds");
            });
        }
    });
    store.flush().expect("flush succeeds");
    let elapsed = start.elapsed().as_secs_f64();
    let logical_mb: f64 = payloads.iter().map(|p| p.len() as f64).sum::<f64>() / MB;
    logical_mb / elapsed
}

/// Fig8's wire column: a fresh 4-of-3 loopback deployment per round.
pub fn wire_aggregate_upload(clients: usize, per_client: usize, duplicate: bool) -> f64 {
    let (_cluster, store) = wire_store(4, 3);
    aggregate_upload(&store, clients, per_client, duplicate)
}

/// Single-client speeds over loopback TCP, fig7(a)'s measured row.
#[derive(Debug, Clone, Copy)]
pub struct WireSingleSpeeds {
    /// Upload MB/s of never-seen data (all shares cross the wire).
    pub upload_unique: f64,
    /// Upload MB/s of already-backed-up data (intra-user dedup: only
    /// fingerprints cross the wire).
    pub upload_duplicate: f64,
    /// Download (restore) MB/s.
    pub download: f64,
}

/// Measures a single client pushing and pulling `bytes` of data through a
/// fresh 4-of-3 loopback deployment.
pub fn wire_single_speeds(bytes: usize) -> WireSingleSpeeds {
    let (_cluster, store) = wire_store(4, 3);
    let data = random_secrets(bytes, 8 * 1024, 11).concat();
    let logical_mb = data.len() as f64 / MB;

    let start = Instant::now();
    store.backup(1, "/fig7a/unique.tar", &data).expect("backup");
    let upload_unique = logical_mb / start.elapsed().as_secs_f64();

    // Same user, same content, different pathname: every share is an
    // intra-user duplicate, eliminated client-side before the wire.
    let start = Instant::now();
    store
        .backup(1, "/fig7a/dup.tar", &data)
        .expect("backup dup");
    let upload_duplicate = logical_mb / start.elapsed().as_secs_f64();

    let start = Instant::now();
    let restored = store.restore(1, "/fig7a/unique.tar").expect("restore");
    let download = logical_mb / start.elapsed().as_secs_f64();
    assert_eq!(restored.len(), data.len());

    WireSingleSpeeds {
        upload_unique,
        upload_duplicate,
        download,
    }
}

/// Throughput of the share-upload RPC with and without batching.
#[derive(Debug, Clone, Copy)]
pub struct RpcBatchingSample {
    /// MB/s storing all shares in one `StoreShares` request.
    pub batched_mbps: f64,
    /// MB/s storing the same volume one share per request.
    pub unbatched_mbps: f64,
    /// `batched_mbps / unbatched_mbps` — the per-request overhead factor the
    /// batched protocol amortises away.
    pub speedup: f64,
}

/// Pushes `count` shares of `share_bytes` each through the raw
/// [`ServerTransport`] RPC against one loopback server, once as a single
/// batch and once as `count` individual requests (distinct contents each
/// round, so dedup never shortcuts the comparison).
pub fn rpc_batching(count: usize, share_bytes: usize) -> RpcBatchingSample {
    let cluster = LoopbackCluster::spawn(1).expect("spawn loopback server");
    let transport = cluster
        .transports(NetClientConfig::default())
        .expect("connect")
        .remove(0);
    let total_mb = (count * share_bytes) as f64 / MB;

    let make_shares = |tag: u8| -> Vec<(ShareMetadata, Vec<u8>)> {
        (0..count)
            .map(|i| {
                let mut data = random_secrets(share_bytes, share_bytes.max(2), i as u64).concat();
                data[0] = tag; // keep batched/unbatched contents disjoint
                let meta = ShareMetadata {
                    fingerprint: Fingerprint::of(&data),
                    share_size: data.len() as u32,
                    secret_seq: i as u64,
                    secret_size: share_bytes as u32,
                };
                (meta, data)
            })
            .collect()
    };

    // Warm the connection (lazy TCP connect + reader thread) outside timing.
    transport.probe().expect("warmup probe");

    let batch = make_shares(1);
    let start = Instant::now();
    transport.store_shares(1, &batch).expect("batched store");
    let batched_mbps = total_mb / start.elapsed().as_secs_f64();

    let singles = make_shares(2);
    let start = Instant::now();
    for share in &singles {
        transport
            .store_shares(1, std::slice::from_ref(share))
            .expect("unbatched store");
    }
    let unbatched_mbps = total_mb / start.elapsed().as_secs_f64();

    RpcBatchingSample {
        batched_mbps,
        unbatched_mbps,
        speedup: batched_mbps / unbatched_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_aggregate_moves_real_data() {
        let mbps = wire_aggregate_upload(2, 64 * 1024, false);
        assert!(mbps > 0.0);
    }

    #[test]
    fn wire_single_speeds_are_positive_and_dedup_wins() {
        let speeds = wire_single_speeds(192 * 1024);
        assert!(speeds.upload_unique > 0.0);
        assert!(speeds.download > 0.0);
        // Duplicate upload skips the share transfer entirely; even at test
        // sizes it should never be slower than a fraction of the unique path.
        assert!(speeds.upload_duplicate > speeds.upload_unique / 4.0);
    }

    #[test]
    fn batching_beats_per_share_requests() {
        let sample = rpc_batching(256, 1024);
        assert!(sample.batched_mbps > 0.0);
        assert!(sample.unbatched_mbps > 0.0);
        // 256 round-trips vs 1: batching must win. Debug builds drown the
        // socket costs in unoptimised hashing, so only release builds (the
        // CI net-e2e job and the bench harness) assert the clear margin.
        if cfg!(debug_assertions) {
            assert!(sample.speedup > 0.2, "speedup = {}", sample.speedup);
        } else {
            assert!(sample.speedup > 1.0, "speedup = {}", sample.speedup);
        }
    }
}
