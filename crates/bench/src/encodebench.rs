//! Measurement helpers for the client-side data path: chunking throughput
//! per algorithm, and buffered vs streamed encode throughput with the
//! buffer-reuse counters that serve as a peak-RSS proxy.
//!
//! Used by the `bench_encode` binary (perf trajectory `BENCH_encode.json`)
//! and by the fig5a/fig7b harnesses for their streamed rows.

use std::io::Read;
use std::sync::Arc;
use std::time::Instant;

use cdstore_chunking::{ChunkStream, ChunkerConfig, ChunkerKind};
use cdstore_core::{encode_stream, ParallelCoder, PipelineConfig};
use cdstore_crypto::Fingerprint;
use cdstore_secretsharing::{BufferPool, PoolStats, SecretSharing};

use crate::MB;

/// Chunking throughput (MB/s) of one algorithm over `data`, measured through
/// the streaming cutter with a single reused chunk buffer — the allocation
/// pattern of the real data path, so Rabin vs FastCDC compares hash cost,
/// not allocator traffic.
pub fn chunking_speed(kind: ChunkerKind, config: ChunkerConfig, data: &[u8]) -> f64 {
    let chunker = kind.build(config);
    let start = Instant::now();
    let mut stream = ChunkStream::new(chunker.as_ref(), data);
    let mut buf = Vec::new();
    let mut chunks = 0usize;
    let mut bytes = 0usize;
    while stream.next_chunk_into(&mut buf).expect("in-memory read") {
        chunks += 1;
        bytes += buf.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(bytes, data.len(), "chunks must cover the input");
    assert!(chunks > 0 || data.is_empty());
    data.len() as f64 / MB / elapsed
}

/// Buffered chunk+encode throughput (MB/s of original data): materialise
/// every chunk, batch-encode with [`ParallelCoder`], and fingerprint every
/// share — the same work the buffered `prepare` path performs, so the
/// streamed/buffered comparison is like for like.
pub fn buffered_encode_speed(
    scheme: &(dyn SecretSharing + Sync),
    kind: ChunkerKind,
    config: ChunkerConfig,
    data: &[u8],
    threads: usize,
) -> f64 {
    let chunker = kind.build(config);
    let start = Instant::now();
    let chunks = chunker.chunk(data);
    let secrets: Vec<Vec<u8>> = chunks.into_iter().map(|c| c.data).collect();
    let coder = ParallelCoder::new(scheme, threads);
    let share_sets = coder.encode_batch(&secrets).expect("encoding failed");
    let fingerprints: Vec<Vec<Fingerprint>> = share_sets
        .iter()
        .map(|shares| shares.iter().map(|s| Fingerprint::of(s)).collect())
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(std::hint::black_box(fingerprints).len(), secrets.len());
    data.len() as f64 / MB / elapsed
}

/// The result of one streamed encode run: throughput plus the buffer-pool
/// counters that bound its memory.
pub struct StreamedEncodeRun {
    /// Chunk+encode throughput, MB/s of original data.
    pub mbps: f64,
    /// Number of secrets encoded.
    pub num_secrets: u64,
    /// Pool counters; `peak_outstanding` is the peak-RSS proxy (live pooled
    /// buffers at the worst instant, vs ~`num_secrets * (n + 1)` buffers for
    /// the buffered path).
    pub pool: PoolStats,
}

/// Streamed chunk+encode throughput over the staged pipeline, shares
/// discarded back into the pool at the sink (isolates the encode path from
/// any store backend, matching what [`buffered_encode_speed`] measures).
pub fn streamed_encode_speed(
    scheme: &(dyn SecretSharing + Sync),
    kind: ChunkerKind,
    config: ChunkerConfig,
    data: &[u8],
    threads: usize,
) -> StreamedEncodeRun {
    let chunker = kind.build(config);
    let pool = Arc::new(BufferPool::new());
    let pipeline = PipelineConfig {
        encode_threads: threads,
        pool: Some(Arc::clone(&pool)),
        ..PipelineConfig::default()
    };
    let start = Instant::now();
    let report = encode_stream(
        scheme,
        chunker.as_ref(),
        data,
        &pipeline,
        |mut enc, pool| {
            pool.put_all(&mut enc.shares);
            Ok(())
        },
    )
    .expect("streamed encoding failed");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(report.logical_bytes, data.len() as u64);
    StreamedEncodeRun {
        mbps: data.len() as f64 / MB / elapsed,
        num_secrets: report.num_secrets,
        pool: pool.stats(),
    }
}

/// A reader that synthesises `total` pseudo-random bytes on the fly without
/// ever materialising them — lets the harness push inputs larger than RAM
/// through `backup_stream` to demonstrate the bounded-memory property.
pub struct SyntheticReader {
    remaining: usize,
    state: u64,
}

impl SyntheticReader {
    /// Creates a reader yielding `total` bytes from `seed`.
    pub fn new(total: usize, seed: u64) -> Self {
        SyntheticReader {
            remaining: total,
            state: seed | 1,
        }
    }
}

impl Read for SyntheticReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let take = buf.len().min(self.remaining);
        for b in &mut buf[..take] {
            // xorshift64*: cheap enough that the reader never bottlenecks.
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            self.state ^= self.state << 17;
            *b = (self.state >> 32) as u8;
        }
        self.remaining -= take;
        Ok(take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_secrets;
    use cdstore_secretsharing::CaontRs;

    fn test_data(len: usize) -> Vec<u8> {
        random_secrets(len, 8 * 1024, 11).concat()
    }

    #[test]
    fn chunking_speeds_are_positive_for_all_kinds() {
        let data = test_data(512 * 1024);
        for kind in ChunkerKind::ALL {
            assert!(chunking_speed(kind, ChunkerConfig::default(), &data) > 0.0);
        }
    }

    #[test]
    fn streamed_and_buffered_speeds_are_positive_and_counted() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let data = test_data(512 * 1024);
        let buffered = buffered_encode_speed(
            &scheme,
            ChunkerKind::Rabin,
            ChunkerConfig::default(),
            &data,
            2,
        );
        assert!(buffered > 0.0);
        let streamed = streamed_encode_speed(
            &scheme,
            ChunkerKind::Rabin,
            ChunkerConfig::default(),
            &data,
            2,
        );
        assert!(streamed.mbps > 0.0);
        assert!(streamed.num_secrets > 0);
        assert_eq!(streamed.pool.outstanding, 0);
        // The pool bound is structural, so it holds even in debug builds:
        // far fewer live buffers than the buffered path's one-per-share.
        assert!(
            (streamed.pool.peak_outstanding as u64) < streamed.num_secrets * 5,
            "peak {} vs {} secrets",
            streamed.pool.peak_outstanding,
            streamed.num_secrets
        );
    }

    #[test]
    fn synthetic_reader_yields_exactly_the_requested_bytes() {
        let mut r = SyntheticReader::new(100_000, 42);
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf.len(), 100_000);
        // Content-defined chunking needs entropy; all-zero output would be a
        // bug that silently skews every measurement.
        assert!(buf.iter().filter(|&&b| b != 0).count() > 90_000);
    }

    // The performance comparisons themselves (FastCDC vs Rabin, streamed vs
    // buffered) are only meaningful with optimisations on; `bench_encode`
    // asserts them in release mode.
}
