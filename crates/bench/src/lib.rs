//! Shared measurement helpers for the figure/table harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§5) and prints the same rows/series the paper
//! reports. Absolute numbers differ from the 2015 testbed — the substrate is
//! a simulator and a different CPU — but the comparisons (who wins, by
//! roughly what factor, where the knees fall) are expected to match; see
//! `EXPERIMENTS.md` for the recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use cdstore_secretsharing::SecretSharing;

pub mod encodebench;
pub mod indexbench;
pub mod kernelbench;
pub mod netbench;
pub mod transfer;

/// Number of bytes in a mebibyte.
pub const MB: f64 = 1024.0 * 1024.0;

/// Generates `total_bytes` of pseudo-random data split into variable-size
/// chunks with the given average (mimicking the paper's "2GB of random data
/// ... generate secrets using variable-size chunking with an average chunk
/// size 8KB").
pub fn random_secrets(total_bytes: usize, avg_chunk: usize, seed: u64) -> Vec<Vec<u8>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut secrets = Vec::new();
    let mut produced = 0usize;
    while produced < total_bytes {
        let size = rng
            .gen_range(avg_chunk / 2..avg_chunk * 3 / 2)
            .min(total_bytes - produced)
            .max(1);
        let mut chunk = vec![0u8; size];
        rng.fill(&mut chunk[..]);
        produced += size;
        secrets.push(chunk);
    }
    secrets
}

/// Measures the encoding speed (MB/s of original data) of a scheme over a
/// batch of secrets using `threads` coding threads.
pub fn encoding_speed(
    scheme: &(dyn SecretSharing + Sync),
    secrets: &[Vec<u8>],
    threads: usize,
) -> f64 {
    let coder = cdstore_core::ParallelCoder::new(scheme, threads);
    let total_bytes: usize = secrets.iter().map(|s| s.len()).sum();
    let start = Instant::now();
    let shares = coder.encode_batch(secrets).expect("encoding failed");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(shares.len(), secrets.len());
    total_bytes as f64 / MB / elapsed
}

/// Measures the decoding speed (MB/s of original data) of a scheme when one
/// share is missing from every secret.
pub fn decoding_speed(
    scheme: &(dyn SecretSharing + Sync),
    secrets: &[Vec<u8>],
    threads: usize,
) -> f64 {
    let coder = cdstore_core::ParallelCoder::new(scheme, threads);
    let encoded = coder.encode_batch(secrets).expect("encoding failed");
    let items: Vec<(Vec<Option<Vec<u8>>>, usize)> = encoded
        .into_iter()
        .zip(secrets)
        .map(|(shares, secret)| {
            let mut slots: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
            slots[0] = None;
            (slots, secret.len())
        })
        .collect();
    let total_bytes: usize = secrets.iter().map(|s| s.len()).sum();
    let start = Instant::now();
    let decoded = coder.decode_batch(&items).expect("decoding failed");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(decoded.len(), secrets.len());
    total_bytes as f64 / MB / elapsed
}

/// Measures the combined chunking + encoding speed over a flat buffer, as in
/// the last paragraph of §5.3.
pub fn chunk_and_encode_speed(
    scheme: &(dyn SecretSharing + Sync),
    data: &[u8],
    threads: usize,
) -> f64 {
    let chunker = cdstore_chunking::RabinChunker::default();
    let start = Instant::now();
    let chunks = cdstore_chunking::Chunker::chunk(&chunker, data);
    let secrets: Vec<Vec<u8>> = chunks.into_iter().map(|c| c.data).collect();
    let coder = cdstore_core::ParallelCoder::new(scheme, threads);
    coder.encode_batch(&secrets).expect("encoding failed");
    let elapsed = start.elapsed().as_secs_f64();
    data.len() as f64 / MB / elapsed
}

/// Formats a floating-point MB/s value for table output.
pub fn fmt_speed(mbps: f64) -> String {
    format!("{mbps:8.1}")
}

/// Formats a percentage for table output.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:6.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdstore_secretsharing::CaontRs;

    #[test]
    fn random_secrets_cover_the_requested_bytes() {
        let secrets = random_secrets(100_000, 8192, 1);
        let total: usize = secrets.iter().map(|s| s.len()).sum();
        assert_eq!(total, 100_000);
        assert!(
            secrets.len() >= 9 && secrets.len() <= 25,
            "{} chunks",
            secrets.len()
        );
    }

    #[test]
    fn speed_measurements_are_positive_and_scale_sanely() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let secrets = random_secrets(512 * 1024, 8192, 2);
        let enc = encoding_speed(&scheme, &secrets, 2);
        let dec = decoding_speed(&scheme, &secrets, 2);
        assert!(enc > 0.0);
        assert!(dec > 0.0);
        let combined = chunk_and_encode_speed(&scheme, &vec![7u8; 256 * 1024], 2);
        assert!(combined > 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_pct(0.5), "  50.0%");
        assert!(fmt_speed(123.456).contains("123.5"));
    }
}
