//! Figure 7(b): single-client trace-driven transfer speeds on the FSL-like
//! workload — upload of the first backup, upload of subsequent backups, and
//! download — on the LAN and cloud testbeds with (n, k) = (4, 3).
//!
//! The dedup behaviour (how many share bytes actually cross the network) is
//! taken from replaying the workload through the real two-stage
//! deduplication bookkeeping; the computation speed is measured on this
//! machine; the LAN and cloud rows are simulated from the Table 2 profiles.
//! A third, fully *measured* row replays the same snapshots against four
//! real `cdstore_net` servers over loopback TCP via `CdStore::backup_chunks`.
//!
//! Run with `cargo run --release -p cdstore-bench --bin fig7b_trace_transfer [data_mb]`.

use std::time::Instant;

use cdstore_bench::netbench::wire_store;
use cdstore_bench::transfer::{SingleClientModel, DOWNLOAD_BACKEND_PENALTY};
use cdstore_bench::{chunk_and_encode_speed, decoding_speed, random_secrets, MB};
use cdstore_secretsharing::CaontRs;
use cdstore_workloads::{weekly_dedup, FslConfig, FslWorkload, Snapshot, Workload};

/// Replays the single-user weekly snapshots against a live loopback-TCP
/// deployment and reports measured (first upload, mean subsequent upload,
/// download-of-first) speeds in MB/s.
fn wire_trace_speeds(snapshots: &[Vec<Snapshot>]) -> (f64, f64, f64) {
    let (_cluster, store) = wire_store(4, 3);
    let mut weekly_mbps = Vec::with_capacity(snapshots.len());
    for week in snapshots {
        let snap = &week[0];
        let chunks = snap.materialize();
        let logical_mb = snap.logical_bytes() as f64 / MB;
        let start = Instant::now();
        store
            .backup_chunks(snap.user, &snap.pathname(), &chunks)
            .expect("trace backup");
        weekly_mbps.push(logical_mb / start.elapsed().as_secs_f64());
    }
    let first_snap = &snapshots[0][0];
    let start = Instant::now();
    let restored = store
        .restore(first_snap.user, &first_snap.pathname())
        .expect("trace restore");
    let down = restored.len() as f64 / MB / start.elapsed().as_secs_f64();
    let subsequent_mean =
        weekly_mbps[1..].iter().sum::<f64>() / (weekly_mbps.len() - 1).max(1) as f64;
    (weekly_mbps[0], subsequent_mean, down)
}

/// Same replay, but end to end through the streaming entry points: each
/// snapshot's bytes flow through `backup_stream` (Read-driven chunking, the
/// bounded-memory encode pipeline, batched wire uploads), and the download
/// streams back out through `restore_stream`. The server re-chunks with its
/// configured chunker, so dedup still collapses the repeated content across
/// weeks.
fn wire_streamed_trace_speeds(snapshots: &[Vec<Snapshot>]) -> (f64, f64, f64) {
    let (_cluster, store) = wire_store(4, 3);
    let mut weekly_mbps = Vec::with_capacity(snapshots.len());
    for week in snapshots {
        let snap = &week[0];
        let bytes = snap.materialize().concat();
        let logical_mb = bytes.len() as f64 / MB;
        let start = Instant::now();
        store
            .backup_stream(snap.user, &snap.pathname(), &bytes[..])
            .expect("streamed trace backup");
        weekly_mbps.push(logical_mb / start.elapsed().as_secs_f64());
    }
    let first_snap = &snapshots[0][0];
    let mut sink = std::io::sink();
    let start = Instant::now();
    let written = store
        .restore_stream(first_snap.user, &first_snap.pathname(), &mut sink)
        .expect("streamed trace restore");
    let down = written as f64 / MB / start.elapsed().as_secs_f64();
    let subsequent_mean =
        weekly_mbps[1..].iter().sum::<f64>() / (weekly_mbps.len() - 1).max(1) as f64;
    (weekly_mbps[0], subsequent_mean, down)
}

fn main() {
    let data_mb: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let (n, k) = (4usize, 3usize);
    let scheme = CaontRs::new(n, k).unwrap();

    // Measured computation speeds on this machine, using all available cores
    // as the multi-threaded client would (§4.6).
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    let flat: Vec<u8> = random_secrets(data_mb * 1024 * 1024, 8 * 1024, 5).concat();
    let secrets = random_secrets(data_mb * 1024 * 1024, 8 * 1024, 6);
    let compute_mbps = chunk_and_encode_speed(&scheme, &flat, threads);
    let decode_mbps = decoding_speed(&scheme, &secrets, threads);

    // Replay a single-user FSL-like stream to get the weekly transfer ratios.
    let workload = FslWorkload::new(FslConfig {
        users: 1,
        weeks: 7,
        initial_chunks_per_user: 2000,
        ..Default::default()
    });
    let weekly = weekly_dedup(&workload.snapshots(), n, k);
    let first = &weekly[0];
    let subsequent = &weekly[1..];

    let mb = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);

    println!("Figure 7(b): single-client trace-driven transfer speeds (MB/s), FSL-like workload, (n, k) = ({n}, {k})");
    println!("(measured client compute: chunk+encode {compute_mbps:.1} MB/s, decode {decode_mbps:.1} MB/s)");
    println!(
        "{:<10} {:>16} {:>18} {:>12}",
        "Testbed", "Upload (first)", "Upload (subsqt)", "Download"
    );
    for (name, model) in [
        ("LAN", SingleClientModel::lan(n, k, compute_mbps)),
        ("Cloud", SingleClientModel::commercial(k, compute_mbps)),
    ] {
        // First backup: some intra-user duplicates exist even in week 1.
        let logical_first = mb(first.stats.logical_bytes);
        let per_cloud_first = vec![mb(first.stats.transferred_share_bytes) / n as f64; n];
        let up_first = model.upload_speed(logical_first, &per_cloud_first);

        // Subsequent backups: average over the remaining weeks.
        let logical_sub: f64 = subsequent.iter().map(|w| mb(w.stats.logical_bytes)).sum();
        let transferred_sub: f64 = subsequent
            .iter()
            .map(|w| mb(w.stats.transferred_share_bytes))
            .sum();
        let per_cloud_sub = vec![transferred_sub / n as f64; n];
        let up_sub = model.upload_speed(logical_sub, &per_cloud_sub);

        // Download: chunk fragmentation adds extra backend reads on top of
        // the baseline penalty (§5.5 reports ~10% below the baseline speed).
        let fragmentation_penalty = 0.10;
        let down = model.download_speed(logical_first, decode_mbps)
            * (1.0 + DOWNLOAD_BACKEND_PENALTY)
            / (1.0 + DOWNLOAD_BACKEND_PENALTY + fragmentation_penalty);
        println!("{name:<10} {up_first:>16.1} {up_sub:>18.1} {down:>12.1}");
    }
    // The measured row: the same snapshots replayed over real sockets.
    let (wire_first, wire_sub, wire_down) = wire_trace_speeds(&workload.snapshots());
    println!(
        "{:<10} {:>16.1} {:>18.1} {:>12.1}",
        "Loopback*", wire_first, wire_sub, wire_down
    );
    let (stream_first, stream_sub, stream_down) = wire_streamed_trace_speeds(&workload.snapshots());
    println!(
        "{:<10} {:>16.1} {:>18.1} {:>12.1}",
        "Streamed*", stream_first, stream_sub, stream_down
    );
    println!();
    println!("(* measured end to end over real loopback TCP against 4 cdstore_net servers;");
    println!("   the Streamed row uses backup_stream/restore_stream — Read-driven chunking and");
    println!("   the bounded-memory encode pipeline — instead of pre-chunked batch uploads)");
    println!("Paper: LAN 92.3 / 145.1 / 89.6 MB/s; Cloud 6.9 / 56.2 / 9.5 MB/s.");
    println!(
        "Shape to verify: the first backup uploads faster than unique data (it already contains"
    );
    println!(
        "intra-user duplicates); subsequent backups approach the duplicate-data speed; the trace"
    );
    println!("download is ~10% below the baseline download because of chunk fragmentation.");
}
