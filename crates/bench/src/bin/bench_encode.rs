//! Perf trajectory for the client-side data path: chunking throughput per
//! algorithm plus buffered vs streamed encode throughput, with fixed seeds,
//! written to `BENCH_encode.json` so this and future PRs leave a comparable
//! curve (companion to `bench_net`'s `BENCH_net.json`).
//!
//! ```text
//! cargo run --release -p cdstore_bench --bin bench_encode [-- out_path] [size_mb]
//! ```
//!
//! Defaults: `BENCH_encode.json` in the current directory, 64 MB of seeded
//! data. Also records the streamed pipeline's peak live pooled buffers — the
//! bounded-memory evidence: the buffered path holds every chunk and every
//! share at once (`num_secrets * (n + 1)` buffers), the streamed path holds a
//! pipeline-depth's worth regardless of input size.

use serde::Serialize;

use cdstore_bench::encodebench::{buffered_encode_speed, chunking_speed, streamed_encode_speed};
use cdstore_bench::random_secrets;
use cdstore_chunking::{ChunkerConfig, ChunkerKind};
use cdstore_secretsharing::CaontRs;

/// The whole snapshot written to `BENCH_encode.json`.
#[derive(Serialize)]
struct BenchEncode {
    schema_version: u32,
    n: usize,
    k: usize,
    size_mb: usize,
    encode_threads: usize,
    /// Chunking alone (streaming cutter, reused buffer), MB/s.
    chunking_fixed_mbps: f64,
    chunking_rabin_mbps: f64,
    chunking_fastcdc_mbps: f64,
    /// FastCDC over Rabin — the point of shipping the second cutter.
    fastcdc_over_rabin: f64,
    /// Chunk + CAONT-RS encode, buffered batch path vs streamed pipeline.
    buffered_encode_mbps: f64,
    streamed_encode_mbps: f64,
    /// streamed / buffered; ≥ 0.9 means the pipeline costs ≤ 10%.
    streamed_over_buffered: f64,
    /// Peak live pooled buffers during the streamed run vs the pipeline's
    /// structural budget and vs what the buffered path materialises.
    streamed_peak_live_buffers: usize,
    streamed_num_secrets: u64,
    buffered_equivalent_buffers: u64,
    streamed_pool_allocations: u64,
    streamed_pool_reuses: u64,
}

fn median_of<F: FnMut() -> f64>(runs: usize, mut f: F) -> f64 {
    let mut xs: Vec<f64> = (0..runs).map(|_| f()).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let mut out_path = String::from("BENCH_encode.json");
    let mut size_mb: usize = 64;
    for arg in std::env::args().skip(1) {
        if let Ok(mb) = arg.parse() {
            size_mb = mb;
        } else {
            out_path = arg;
        }
    }
    let (n, k) = (4usize, 3usize);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    let chunk_config = ChunkerConfig::default();

    eprintln!("bench_encode: generating {size_mb} MB of seeded data...");
    let data = random_secrets(size_mb * 1024 * 1024, 8 * 1024, 17).concat();
    let scheme = CaontRs::new(n, k).expect("valid (n, k)");

    eprintln!("bench_encode: chunking throughput (3 runs each, median)...");
    let chunk = |kind| median_of(3, || chunking_speed(kind, chunk_config, &data));
    let fixed = chunk(ChunkerKind::Fixed);
    let rabin = chunk(ChunkerKind::Rabin);
    let fastcdc = chunk(ChunkerKind::FastCdc);
    eprintln!(
        "bench_encode:   fixed {fixed:.0} MB/s, rabin {rabin:.0} MB/s, fastcdc {fastcdc:.0} MB/s"
    );

    eprintln!("bench_encode: buffered chunk+encode at {threads} threads...");
    let buffered = median_of(3, || {
        buffered_encode_speed(&scheme, ChunkerKind::FastCdc, chunk_config, &data, threads)
    });

    eprintln!("bench_encode: streamed chunk+encode at {threads} threads...");
    let mut last_run = None;
    let streamed = median_of(3, || {
        let run =
            streamed_encode_speed(&scheme, ChunkerKind::FastCdc, chunk_config, &data, threads);
        let mbps = run.mbps;
        last_run = Some(run);
        mbps
    });
    let run = last_run.expect("at least one streamed run");

    let snapshot = BenchEncode {
        schema_version: 1,
        n,
        k,
        size_mb,
        encode_threads: threads,
        chunking_fixed_mbps: fixed,
        chunking_rabin_mbps: rabin,
        chunking_fastcdc_mbps: fastcdc,
        fastcdc_over_rabin: fastcdc / rabin,
        buffered_encode_mbps: buffered,
        streamed_encode_mbps: streamed,
        streamed_over_buffered: streamed / buffered,
        streamed_peak_live_buffers: run.pool.peak_outstanding,
        streamed_num_secrets: run.num_secrets,
        // Buffered path: every secret plus its n shares live at once.
        buffered_equivalent_buffers: run.num_secrets * (n as u64 + 1),
        streamed_pool_allocations: run.pool.allocations,
        streamed_pool_reuses: run.pool.reuses,
    };

    let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    std::fs::write(&out_path, format!("{json}\n")).expect("write snapshot");
    println!("{json}");
    eprintln!("bench_encode: wrote {out_path}");

    // The acceptance comparisons only hold with optimisations on.
    if cfg!(debug_assertions) {
        eprintln!("bench_encode: debug build — skipping ratio checks");
        return;
    }
    assert!(
        snapshot.fastcdc_over_rabin >= 2.0,
        "FastCDC must chunk at >= 2x Rabin (got {:.2}x)",
        snapshot.fastcdc_over_rabin
    );
    assert!(
        snapshot.streamed_over_buffered >= 0.9,
        "streamed path must be within 10% of buffered (got {:.2})",
        snapshot.streamed_over_buffered
    );
}
