//! Table 2: measured upload/download speeds of each of the four clouds when
//! transferring 2 GB of unique data in 4 MB units, reproduced over the
//! simulated cloud profiles (mean and standard deviation over 10 runs with
//! per-run bandwidth jitter).
//!
//! Run with `cargo run --release -p cdstore-bench --bin table2_cloud_speeds`.

use cdstore_cloudsim::{CloudProfile, Direction};
use rand::{Rng, SeedableRng};

const RUNS: usize = 10;
const TOTAL_MB: f64 = 2048.0;
const UNIT_MB: f64 = 4.0;

fn measure(profile: &CloudProfile, direction: Direction, rng: &mut rand::rngs::StdRng) -> f64 {
    // Sample a per-run effective bandwidth around the profile mean (the
    // jitter the paper captures as the standard deviation over 10 runs).
    let mean = profile.bandwidth(direction);
    let std = profile.bandwidth_std(direction);
    let effective = (mean + (rng.gen::<f64>() * 2.0 - 1.0) * std * 1.7).max(0.1);
    let requests = (TOTAL_MB / UNIT_MB).ceil();
    let seconds = TOTAL_MB / effective + requests * profile.latency_ms / 1000.0;
    TOTAL_MB / seconds
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2014);
    println!("Table 2: per-cloud speeds (MB/s) for 2 GB of unique data in 4 MB units");
    println!(
        "{:<12} {:>22} {:>22}",
        "Cloud", "Upload avg (std)", "Download avg (std)"
    );
    for profile in &CloudProfile::COMMERCIAL_CLOUDS {
        let mut stats = Vec::new();
        for direction in [Direction::Upload, Direction::Download] {
            let samples: Vec<f64> = (0..RUNS)
                .map(|_| measure(profile, direction, &mut rng))
                .collect();
            let mean = samples.iter().sum::<f64>() / RUNS as f64;
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / RUNS as f64;
            stats.push((mean, var.sqrt()));
        }
        println!(
            "{:<12} {:>15.2} ({:.2}) {:>15.2} ({:.2})",
            profile.name, stats[0].0, stats[0].1, stats[1].0, stats[1].1
        );
    }
    println!();
    println!("Paper's Table 2 for reference: Amazon 5.87 (0.19) / 4.45 (0.30), Google 4.99 (0.23) / 4.45 (0.21),");
    println!("Azure 19.59 (1.20) / 13.78 (0.72), Rackspace 19.42 (1.06) / 12.93 (1.47).");
}
