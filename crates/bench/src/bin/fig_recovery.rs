//! Recovery time vs. index size: how long `CdStoreServer::open` takes to
//! rebuild a server from backend-only state, and how much the periodic
//! checkpoint buys over replaying the whole journal.
//!
//! For each index size the harness populates one server (direct server API,
//! one share per secret), flushes it, and measures three recoveries from
//! copies of the same backend:
//!
//! * **journal replay** — no checkpoint was ever committed, so recovery
//!   replays every record since the server was born (the worst case the
//!   checkpoint cadence bounds);
//! * **checkpoint** — a checkpoint was committed after the last write, so
//!   recovery loads the snapshot and replays a zero-length suffix;
//! * **checkpoint + suffix** — a checkpoint covers 90% of the history and
//!   the journal suffix the remaining 10% (the steady-state mixture).
//!
//! Run with
//! `cargo run --release -p cdstore_bench --bin fig_recovery \
//!  [shares_per_step...]` (default steps: 1000 4000 16000).

use std::sync::Arc;
use std::time::Instant;

use cdstore_core::metadata::{FileRecipe, RecipeEntry, ShareMetadata};
use cdstore_core::CdStoreServer;
use cdstore_crypto::Fingerprint;
use cdstore_storage::{MemoryBackend, StorageBackend};

const SHARE_BYTES: usize = 4096;
const SHARES_PER_FILE: usize = 64;

/// Uploads `count` unique shares as `count / SHARES_PER_FILE` files through
/// the server-side protocol (store_shares + put_file).
fn populate(server: &CdStoreServer, user: u64, base: usize, count: usize) {
    let files = count.div_ceil(SHARES_PER_FILE);
    for file in 0..files {
        let in_file = SHARES_PER_FILE.min(count - file * SHARES_PER_FILE);
        let shares: Vec<(ShareMetadata, Vec<u8>)> = (0..in_file)
            .map(|i| {
                let mut data = vec![0u8; SHARE_BYTES];
                let tag = (base + file * SHARES_PER_FILE + i) as u64;
                data[..8].copy_from_slice(&tag.to_be_bytes());
                (
                    ShareMetadata {
                        fingerprint: Fingerprint::of(&data),
                        share_size: data.len() as u32,
                        secret_seq: i as u64,
                        secret_size: data.len() as u32 * 3,
                    },
                    data,
                )
            })
            .collect();
        let fps: Vec<Fingerprint> = shares.iter().map(|(m, _)| m.fingerprint).collect();
        server.store_shares(user, &shares).expect("store succeeds");
        let recipe = FileRecipe {
            file_size: (in_file * SHARE_BYTES) as u64,
            entries: shares
                .iter()
                .map(|(m, _)| RecipeEntry {
                    share_fingerprint: m.fingerprint,
                    secret_size: m.secret_size,
                })
                .collect(),
        };
        server
            .put_file(
                user,
                format!("/bench/{base}/{file}").as_bytes(),
                &recipe,
                &fps,
            )
            .expect("put_file succeeds");
    }
}

/// Deep-copies a backend so each recovery run starts from identical state.
fn snapshot_backend(backend: &MemoryBackend) -> Arc<MemoryBackend> {
    let copy = Arc::new(MemoryBackend::new());
    for key in backend.list().expect("list succeeds") {
        copy.put(&key, &backend.get(&key).expect("get succeeds"))
            .expect("put succeeds");
    }
    copy
}

/// Builds a flushed server holding `shares` unique shares; `checkpoint_at`
/// commits a checkpoint after that fraction of the workload (1.0 = after
/// everything, 0.0 = never).
fn build(shares: usize, checkpoint_at: f64) -> Arc<MemoryBackend> {
    let backend = Arc::new(MemoryBackend::new());
    let server = CdStoreServer::with_backend(0, backend.clone());
    let head = (shares as f64 * checkpoint_at) as usize;
    populate(&server, 1, 0, head);
    if checkpoint_at > 0.0 {
        server.flush().expect("flush succeeds");
        server.checkpoint().expect("checkpoint succeeds");
    }
    populate(&server, 1, head, shares - head);
    server.flush().expect("flush succeeds");
    backend
}

fn timed_open(backend: &MemoryBackend) -> (f64, cdstore_core::RecoveryReport, usize) {
    let copy = snapshot_backend(backend);
    let start = Instant::now();
    let (server, report) = CdStoreServer::open(0, copy).expect("recovery succeeds");
    let elapsed = start.elapsed().as_secs_f64() * 1000.0;
    (elapsed, report, server.index_bytes())
}

fn main() {
    let steps: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![1000, 4000, 16000]
        } else {
            args
        }
    };

    println!("Recovery time vs index size ({SHARE_BYTES}-byte shares, {SHARES_PER_FILE} per file)");
    println!(
        "{:<10} {:>12} {:>10} {:>18} {:>16} {:>20}",
        "Shares", "Index KB", "Files", "Journal replay", "Checkpoint", "Checkpoint+suffix"
    );
    for &shares in &steps {
        let (replay_ms, replay_report, index_bytes) = timed_open(&build(shares, 0.0));
        let (ckpt_ms, ckpt_report, _) = timed_open(&build(shares, 1.0));
        let (mixed_ms, mixed_report, _) = timed_open(&build(shares, 0.9));
        // The "journal replay" scenario may still see an *automatic*
        // checkpoint once the workload outgrows the cadence — that is the
        // subsystem doing its job; the replayed-records column tells the
        // real story. The explicit-checkpoint scenario must always use one.
        assert!(ckpt_report.used_checkpoint);
        println!(
            "{:<10} {:>12.0} {:>10} {:>11.1} ms ({:>5}r) {:>9.1} ms ({:>3}r) {:>12.1} ms ({:>5}r)",
            shares,
            index_bytes as f64 / 1024.0,
            shares.div_ceil(SHARES_PER_FILE),
            replay_ms,
            replay_report.records_replayed,
            ckpt_ms,
            ckpt_report.records_replayed,
            mixed_ms,
            mixed_report.records_replayed,
        );
    }
    println!(
        "\nA checkpoint bounds recovery to the journal suffix written since it;\n\
         `CdStoreServer::open` itself re-checkpoints, so crash loops never\n\
         re-replay the same history twice."
    );
}
