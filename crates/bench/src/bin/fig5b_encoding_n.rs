//! Figure 5(b): encoding speeds versus the number of clouds `n` (4 to 20),
//! with `k` the largest integer such that `k/n <= 3/4` and two coding
//! threads.
//!
//! Run with `cargo run --release -p cdstore-bench --bin fig5b_encoding_n [data_mb]`.

use cdstore_bench::{chunk_and_encode_speed, encoding_speed, random_secrets};
use cdstore_secretsharing::{AontRs, CaontRs, CaontRsRivest, SecretSharing};

fn main() {
    let data_mb: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let secrets = random_secrets(data_mb * 1024 * 1024, 8 * 1024, 11);
    let threads = 2usize;

    println!("Figure 5(b): encoding speed (MB/s) vs n (k = largest with k/n <= 3/4), {threads} threads, {data_mb} MB");
    println!(
        "{:<6} {:<6} {:>14} {:>14} {:>18}",
        "n", "k", "CAONT-RS", "AONT-RS", "CAONT-RS-Rivest"
    );
    for n in (4..=20usize).step_by(4) {
        let k = (n * 3) / 4;
        let caont = CaontRs::new(n, k).unwrap();
        let aont = AontRs::new(n, k).unwrap();
        let rivest = CaontRsRivest::new(n, k).unwrap();
        let schemes: [&(dyn SecretSharing + Sync); 3] = [&caont, &aont, &rivest];
        let speeds: Vec<f64> = schemes
            .iter()
            .map(|s| encoding_speed(*s, &secrets, threads))
            .collect();
        println!(
            "{:<6} {:<6} {:>14.1} {:>14.1} {:>18.1}",
            n, k, speeds[0], speeds[1], speeds[2]
        );
    }

    // Combined chunking + encoding (§5.3, last paragraph): around 16% lower
    // than the encoding-only speed.
    let caont = CaontRs::new(4, 3).unwrap();
    let flat: Vec<u8> = random_secrets(data_mb * 1024 * 1024, 8 * 1024, 13).concat();
    let encode_only = encoding_speed(&caont, &secrets, threads);
    let combined = chunk_and_encode_speed(&caont, &flat, threads);
    println!();
    println!(
        "Combined chunking + encoding, (4, 3), {threads} threads: {combined:.1} MB/s ({:.0}% below encoding-only {encode_only:.1} MB/s)",
        (1.0 - combined / encode_only) * 100.0
    );
    println!();
    println!("Paper: speeds decrease only slightly with n (about 8% from n = 4 to 20 for CAONT-RS on Local-i5),");
    println!(
        "because Reed-Solomon coding is a small cost next to the AONT's cryptographic operations;"
    );
    println!("combined chunking + encoding is about 16% below encoding-only.");
}
