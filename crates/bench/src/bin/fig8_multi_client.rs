//! Figure 8: aggregate upload speed of multiple concurrent CDStore clients
//! (1–8) on the LAN testbed with four servers and (n, k) = (4, 3), for both
//! unique and duplicate data.
//!
//! Run with `cargo run --release -p cdstore-bench --bin fig8_multi_client [data_mb]`.

use cdstore_bench::transfer::MultiClientModel;
use cdstore_bench::{chunk_and_encode_speed, random_secrets};
use cdstore_secretsharing::CaontRs;

fn main() {
    let data_mb: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let (n, k) = (4usize, 3usize);
    let scheme = CaontRs::new(n, k).unwrap();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    let flat: Vec<u8> = random_secrets(data_mb * 1024 * 1024, 8 * 1024, 8).concat();
    let compute_mbps = chunk_and_encode_speed(&scheme, &flat, threads);

    let model = MultiClientModel::lan(n, k, compute_mbps);
    let per_client_mb = 2048.0;

    println!(
        "Figure 8: aggregate upload speeds (MB/s) vs number of clients, LAN, (n, k) = ({n}, {k})"
    );
    println!("(measured per-client chunk+encode speed: {compute_mbps:.1} MB/s)");
    println!(
        "{:<10} {:>16} {:>16}",
        "Clients", "Upload (uniq)", "Upload (dup)"
    );
    for clients in 1..=8usize {
        let uniq = model.aggregate_unique_upload(clients, per_client_mb);
        let dup = model.aggregate_duplicate_upload(clients, per_client_mb);
        println!("{clients:<10} {uniq:>16.1} {dup:>16.1}");
    }
    println!();
    println!(
        "Paper: unique-data aggregate reaches 282 MB/s at 8 clients (310 MB/s without disk I/O,"
    );
    println!("i.e. about the aggregate Ethernet speed of k = 3 servers); duplicate-data aggregate reaches");
    println!("572 MB/s with a knee at 4 clients where server CPU saturates.");
}
