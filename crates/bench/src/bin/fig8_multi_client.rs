//! Figure 8: aggregate upload speed of multiple concurrent CDStore clients
//! (1–8) with four servers and (n, k) = (4, 3), for both unique and
//! duplicate data.
//!
//! Each round builds a live deployment, spawns 1–8 client threads (each with
//! its own cloned handle and user id), releases them through a barrier, and
//! measures the wall-clock aggregate MB/s of logical data through the full
//! chunk → CAONT-RS → two-stage-dedup → container pipeline. Two measured
//! deployments run side by side: **in-process** servers (no sockets — the
//! computation ceiling) and **over-the-wire** servers behind real loopback
//! TCP via `cdstore_net` (serialization, syscalls, and flow control
//! included). The LAN flow model of the paper's testbed is printed alongside
//! for comparison.
//!
//! Run with
//! `cargo run --release -p cdstore_bench --bin fig8_multi_client [per_client_mb] [--wire]`.
//!
//! `--wire` restricts the run to the over-the-wire columns (the CI smoke
//! configuration: a quick end-to-end proof that concurrent clients saturate
//! real sockets).

use cdstore_bench::netbench::{aggregate_upload, wire_store};
use cdstore_bench::transfer::MultiClientModel;
use cdstore_bench::{chunk_and_encode_speed, random_secrets};
use cdstore_core::{CdStore, CdStoreConfig};
use cdstore_secretsharing::CaontRs;

fn measure_in_process(clients: usize, per_client: usize, duplicate: bool) -> f64 {
    let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
    aggregate_upload(&store, clients, per_client, duplicate)
}

fn measure_wire(clients: usize, per_client: usize, duplicate: bool) -> f64 {
    let (_cluster, store) = wire_store(4, 3);
    aggregate_upload(&store, clients, per_client, duplicate)
}

fn main() {
    let mut per_client_mb: usize = 8;
    let mut wire_only = false;
    for arg in std::env::args().skip(1) {
        if arg == "--wire" {
            wire_only = true;
        } else if let Ok(mb) = arg.parse() {
            per_client_mb = mb;
        }
    }
    let per_client = per_client_mb * 1024 * 1024;
    let (n, k) = (4usize, 3usize);

    if wire_only {
        println!(
            "Figure 8 (wire smoke): aggregate upload over loopback TCP (MB/s), (n, k) = ({n}, {k})"
        );
        println!("({per_client_mb} MB per client through 4 cdstore_net servers)");
        println!(
            "{:<10} {:>15} {:>15}",
            "Clients", "Wire (uniq)", "Wire (dup)"
        );
        for clients in 1..=8usize {
            let uniq = measure_wire(clients, per_client, false);
            let dup = measure_wire(clients, per_client, true);
            println!("{clients:<10} {uniq:>15.1} {dup:>15.1}");
            assert!(uniq > 0.0 && dup > 0.0, "wire deployment moved no data");
        }
        return;
    }

    let scheme = CaontRs::new(n, k).unwrap();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    let flat: Vec<u8> = random_secrets(16 * 1024 * 1024, 8 * 1024, 8).concat();
    let compute_mbps = chunk_and_encode_speed(&scheme, &flat, threads);
    let model = MultiClientModel::lan(n, k, compute_mbps);
    let model_per_client_mb = 2048.0;

    println!("Figure 8: aggregate upload speeds (MB/s) vs number of clients, (n, k) = ({n}, {k})");
    println!("(per-client chunk+encode speed: {compute_mbps:.1} MB/s; measured columns drive");
    println!(" {per_client_mb} MB per client through live servers, in-process vs loopback TCP)");
    println!(
        "{:<8} {:>14} {:>13} {:>12} {:>11} {:>17} {:>16}",
        "Clients",
        "InProc (uniq)",
        "InProc (dup)",
        "Wire (uniq)",
        "Wire (dup)",
        "LAN model (uniq)",
        "LAN model (dup)"
    );
    for clients in 1..=8usize {
        let inproc_uniq = measure_in_process(clients, per_client, false);
        let inproc_dup = measure_in_process(clients, per_client, true);
        let wire_uniq = measure_wire(clients, per_client, false);
        let wire_dup = measure_wire(clients, per_client, true);
        let model_uniq = model.aggregate_unique_upload(clients, model_per_client_mb);
        let model_dup = model.aggregate_duplicate_upload(clients, model_per_client_mb);
        println!(
            "{clients:<8} {inproc_uniq:>14.1} {inproc_dup:>13.1} {wire_uniq:>12.1} \
             {wire_dup:>11.1} {model_uniq:>17.1} {model_dup:>16.1}"
        );
    }
    println!();
    println!(
        "Paper: unique-data aggregate reaches 282 MB/s at 8 clients (310 MB/s without disk I/O,"
    );
    println!("i.e. about the aggregate Ethernet speed of k = 3 servers); duplicate-data aggregate reaches");
    println!(
        "572 MB/s with a knee at 4 clients where server CPU saturates. The in-process columns are"
    );
    println!(
        "CPU-bound (no network at all); the wire columns add real TCP serialization and syscalls"
    );
    println!("over loopback, so the gap between the two is the protocol overhead.");
}
