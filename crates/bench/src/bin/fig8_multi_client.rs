//! Figure 8: aggregate upload speed of multiple concurrent CDStore clients
//! (1–8) with four servers and (n, k) = (4, 3), for both unique and
//! duplicate data.
//!
//! Unlike the earlier analytical-only version, this drives *real* concurrent
//! traffic: each round builds a live [`CdStore`] deployment, spawns 1–8
//! client threads (each with its own cloned handle and user id), releases
//! them through a barrier, and measures the wall-clock aggregate MB/s of
//! logical data through the full chunk → CAONT-RS → two-stage-dedup →
//! container pipeline. The LAN flow model of the paper's testbed is printed
//! alongside for comparison (in-process servers have neither NICs nor
//! disks, so the two columns answer different questions).
//!
//! Run with
//! `cargo run --release -p cdstore_bench --bin fig8_multi_client [per_client_mb]`.

use std::sync::Barrier;
use std::time::Instant;

use cdstore_bench::transfer::MultiClientModel;
use cdstore_bench::{chunk_and_encode_speed, random_secrets};
use cdstore_core::{CdStore, CdStoreConfig};
use cdstore_secretsharing::CaontRs;

/// One measured round: `clients` threads each backing up `per_client` bytes
/// against a fresh deployment. With `duplicate`, the timed run re-uploads
/// data each user already backed up (the paper's duplicate-data scenario:
/// intra-user dedup eliminates the share transfer); without it, each
/// client's data is unique and unseen. Returns aggregate logical MB/s.
fn measure_aggregate(clients: usize, per_client: usize, duplicate: bool) -> f64 {
    let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
    // Materialise each client's payload before starting the clock.
    let payloads: Vec<Vec<u8>> = (0..clients)
        .map(|c| random_secrets(per_client, 8 * 1024, 100 + c as u64).concat())
        .collect();
    if duplicate {
        // Seed every user's data outside the timed region, so the measured
        // backups hit the intra-user dedup path for all of their shares.
        for (c, payload) in payloads.iter().enumerate() {
            store
                .backup(c as u64 + 1, &format!("/client-{c}/seed.tar"), payload)
                .expect("seed backup succeeds");
        }
    }
    let barrier = Barrier::new(clients);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (c, payload) in payloads.iter().enumerate() {
            let store = store.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let user = c as u64 + 1;
                store
                    .backup(user, &format!("/client-{c}/backup.tar"), payload)
                    .expect("backup succeeds");
            });
        }
    });
    store.flush().expect("flush succeeds");
    let elapsed = start.elapsed().as_secs_f64();
    let logical_mb: f64 = payloads.iter().map(|p| p.len() as f64).sum::<f64>() / (1024.0 * 1024.0);
    logical_mb / elapsed
}

fn main() {
    let per_client_mb: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let (n, k) = (4usize, 3usize);
    let scheme = CaontRs::new(n, k).unwrap();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    let flat: Vec<u8> = random_secrets(16 * 1024 * 1024, 8 * 1024, 8).concat();
    let compute_mbps = chunk_and_encode_speed(&scheme, &flat, threads);
    let model = MultiClientModel::lan(n, k, compute_mbps);
    let model_per_client_mb = 2048.0;

    println!("Figure 8: aggregate upload speeds (MB/s) vs number of clients, (n, k) = ({n}, {k})");
    println!("(per-client chunk+encode speed: {compute_mbps:.1} MB/s; measured columns drive");
    println!(" {per_client_mb} MB per client through live in-process servers)");
    println!(
        "{:<10} {:>15} {:>15} {:>17} {:>17}",
        "Clients", "Meas. (uniq)", "Meas. (dup)", "LAN model (uniq)", "LAN model (dup)"
    );
    for clients in 1..=8usize {
        let measured_uniq = measure_aggregate(clients, per_client_mb * 1024 * 1024, false);
        let measured_dup = measure_aggregate(clients, per_client_mb * 1024 * 1024, true);
        let model_uniq = model.aggregate_unique_upload(clients, model_per_client_mb);
        let model_dup = model.aggregate_duplicate_upload(clients, model_per_client_mb);
        println!(
            "{clients:<10} {measured_uniq:>15.1} {measured_dup:>15.1} {model_uniq:>17.1} {model_dup:>17.1}"
        );
    }
    println!();
    println!(
        "Paper: unique-data aggregate reaches 282 MB/s at 8 clients (310 MB/s without disk I/O,"
    );
    println!("i.e. about the aggregate Ethernet speed of k = 3 servers); duplicate-data aggregate reaches");
    println!(
        "572 MB/s with a knee at 4 clients where server CPU saturates. The measured columns are"
    );
    println!("CPU-bound (no real network), so they scale with available cores rather than NICs.");
}
