//! Figure 6: deduplication efficiency of CDStore on the FSL-like and VM-like
//! workloads with (n, k) = (4, 3).
//!
//! * Figure 6(a): intra-user and inter-user deduplication savings per weekly
//!   backup.
//! * Figure 6(b): cumulative sizes of logical data, logical shares,
//!   transferred shares, and physical shares.
//!
//! Run with `cargo run --release -p cdstore-bench --bin fig6_dedup [scale]`,
//! where `scale` multiplies the per-user chunk counts (default 1).

use cdstore_workloads::{weekly_dedup, FslConfig, FslWorkload, VmConfig, VmWorkload, Workload};

fn gb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0 * 1024.0)
}

fn report(name: &str, snapshots: &[Vec<cdstore_workloads::Snapshot>], n: usize, k: usize) {
    let weekly = weekly_dedup(snapshots, n, k);
    println!("--- {name} dataset, (n, k) = ({n}, {k}) ---");
    println!("Figure 6(a): weekly deduplication savings");
    println!(
        "{:<6} {:>18} {:>18}",
        "Week", "Intra-user saving", "Inter-user saving"
    );
    for week in &weekly {
        println!(
            "{:<6} {:>17.1}% {:>17.1}%",
            week.week + 1,
            week.stats.intra_user_saving() * 100.0,
            week.stats.inter_user_saving() * 100.0
        );
    }
    println!();
    println!("Figure 6(b): cumulative data and share sizes (GB)");
    println!(
        "{:<6} {:>14} {:>16} {:>18} {:>16}",
        "Week", "Logical data", "Logical shares", "Transferred shares", "Physical shares"
    );
    for week in &weekly {
        println!(
            "{:<6} {:>14.3} {:>16.3} {:>18.3} {:>16.3}",
            week.week + 1,
            gb(week.cumulative.logical_bytes),
            gb(week.cumulative.logical_share_bytes),
            gb(week.cumulative.transferred_share_bytes),
            gb(week.cumulative.physical_share_bytes)
        );
    }
    let last = weekly.last().expect("at least one week");
    println!(
        "After {} weeks: physical shares are {:.1}% of the logical data (dedup ratio {:.1}x)",
        weekly.len(),
        last.cumulative.physical_to_logical() * 100.0,
        last.cumulative.dedup_ratio()
    );
    println!();
}

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let (n, k) = (4, 3);

    let fsl = FslWorkload::new(FslConfig {
        initial_chunks_per_user: 400 * scale,
        ..Default::default()
    });
    report("FSL", &fsl.snapshots(), n, k);

    let vm = VmWorkload::new(VmConfig {
        chunks_per_image: 300 * scale,
        ..Default::default()
    });
    report("VM", &vm.snapshots(), n, k);

    println!("Paper: FSL intra-user savings >= 94.2% after week 1, inter-user <= 12.9%;");
    println!(
        "VM intra-user savings >= 98.0% after week 1, inter-user 93.4% in week 1 then 11.8-47.0%;"
    );
    println!("after 16 weeks physical shares are ~6.3% (FSL) and ~0.8% (VM) of logical data.");
}
