//! Perf trajectory for the network layer: runs the fig7a/fig8 wire
//! measurements with fixed seeds and writes `BENCH_net.json`, so this and
//! future PRs leave a comparable curve (ROADMAP item 6).
//!
//! ```text
//! cargo run --release -p cdstore_bench --bin bench_net [-- out_path] [per_client_mb]
//! ```
//!
//! Defaults: `BENCH_net.json` in the current directory, 4 MB per client.
//! All data generation is seeded; run-to-run variance comes only from the
//! machine, never the workload.

use serde::Serialize;

use cdstore_bench::netbench::{rpc_batching, wire_aggregate_upload, wire_single_speeds};

/// One fig8-style point: concurrent clients against 4 loopback servers.
#[derive(Serialize)]
struct AggregatePoint {
    clients: usize,
    unique_mbps: f64,
    duplicate_mbps: f64,
}

/// The whole snapshot written to `BENCH_net.json`.
#[derive(Serialize)]
struct BenchNet {
    schema_version: u32,
    n: usize,
    k: usize,
    per_client_mb: usize,
    /// fig7a over the wire: one client, loopback TCP.
    single_upload_unique_mbps: f64,
    single_upload_duplicate_mbps: f64,
    single_download_mbps: f64,
    /// fig8 over the wire at 1/4/8 clients.
    aggregate: Vec<AggregatePoint>,
    /// Raw share-upload RPC, one batch vs one-share-per-request.
    rpc_batched_mbps: f64,
    rpc_unbatched_mbps: f64,
    rpc_batching_speedup: f64,
}

fn main() {
    let mut out_path = String::from("BENCH_net.json");
    let mut per_client_mb: usize = 4;
    for arg in std::env::args().skip(1) {
        if let Ok(mb) = arg.parse() {
            per_client_mb = mb;
        } else {
            out_path = arg;
        }
    }
    let per_client = per_client_mb * 1024 * 1024;

    eprintln!("bench_net: single-client loopback speeds ({per_client_mb} MB)...");
    let single = wire_single_speeds(per_client);

    let mut aggregate = Vec::new();
    for clients in [1usize, 4, 8] {
        eprintln!("bench_net: aggregate at {clients} client(s)...");
        aggregate.push(AggregatePoint {
            clients,
            unique_mbps: wire_aggregate_upload(clients, per_client, false),
            duplicate_mbps: wire_aggregate_upload(clients, per_client, true),
        });
    }

    eprintln!("bench_net: rpc batching ratio...");
    // ~3 KB is what a CAONT-RS share of an 8 KB average chunk actually
    // weighs at k = 3, so the ratio reflects the real protocol traffic.
    let rpc = rpc_batching(512, 3 * 1024);

    let snapshot = BenchNet {
        schema_version: 1,
        n: 4,
        k: 3,
        per_client_mb,
        single_upload_unique_mbps: single.upload_unique,
        single_upload_duplicate_mbps: single.upload_duplicate,
        single_download_mbps: single.download,
        aggregate,
        rpc_batched_mbps: rpc.batched_mbps,
        rpc_unbatched_mbps: rpc.unbatched_mbps,
        rpc_batching_speedup: rpc.speedup,
    };

    let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    std::fs::write(&out_path, format!("{json}\n")).expect("write snapshot");
    println!("{json}");
    eprintln!("bench_net: wrote {out_path}");
}
