//! Replays a chaos scenario from its seed and prints the fault schedules.
//!
//! This is the local-debugging companion to `tests/chaos_suite.rs`: when
//! the CI chaos job fails it uploads the per-cloud fault schedule logs,
//! whose header names the seed. Re-running that seed here reproduces the
//! exact same fault sequence (injection is deterministic in the seed and
//! the op tick), prints every injected fault, and exits nonzero if the
//! workload does not survive it.
//!
//! ```text
//! cargo run --release -p cdstore_bench --bin chaos_replay -- \
//!     [--seed N] [--profile degraded|torn|outage] [--smoke]
//! ```
//!
//! Defaults: the CI seed (`0xCD570FE`), profile `degraded`, full size.

use std::process::ExitCode;
use std::sync::Arc;

use cdstore_core::{CdStore, CdStoreConfig, RetryPolicy};
use cdstore_storage::{FaultConfig, FaultPlan, FaultyBackend, MemoryBackend, StorageBackend};
use cdstore_workloads::{FslConfig, FslWorkload, Snapshot, Workload};

/// The same default as `tests/chaos_suite.rs` (`CHAOS_SEED` there).
const DEFAULT_SEED: u64 = 0xCD5_70FE;

struct Args {
    seed: u64,
    profile: String,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: DEFAULT_SEED,
        profile: String::from("degraded"),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--profile" => {
                args.profile = it.next().ok_or("--profile needs a value")?;
            }
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Maps a profile name to the per-cloud fault configuration, mirroring the
/// profiles the chaos suite runs.
fn profile_config(profile: &str, seed: u64, cloud: usize) -> Result<FaultConfig, String> {
    let base = FaultConfig::clean(seed.wrapping_add(cloud as u64));
    match profile {
        "degraded" => Ok(base.with_error_rate(0.05).with_torn_write_rate(0.03)),
        "torn" => Ok(base.with_error_rate(0.01).with_torn_write_rate(0.08)),
        "outage" => Ok(base.with_error_rate(0.02)),
        other => Err(format!(
            "unknown profile {other:?} (expected degraded, torn, or outage)"
        )),
    }
}

fn run(args: &Args) -> Result<Vec<Arc<FaultPlan>>, String> {
    let mut backends: Vec<Arc<dyn StorageBackend>> = Vec::new();
    let mut plans = Vec::new();
    for cloud in 0..4 {
        let plan = Arc::new(FaultPlan::new(profile_config(
            &args.profile,
            args.seed,
            cloud,
        )?));
        backends.push(Arc::new(FaultyBackend::new(
            Arc::new(MemoryBackend::new()),
            Arc::clone(&plan),
        )));
        plans.push(plan);
    }
    let config = CdStoreConfig::new(4, 3)
        .map_err(|e| e.to_string())?
        .with_retry(RetryPolicy::with_attempts(8));
    let store = CdStore::with_backends(config, backends).map_err(|e| e.to_string())?;

    let (users, weeks, chunks) = if args.smoke { (2, 2, 40) } else { (4, 4, 120) };
    let snapshots: Vec<Vec<Snapshot>> = FslWorkload::new(FslConfig {
        users,
        weeks,
        initial_chunks_per_user: chunks,
        ..Default::default()
    })
    .snapshots();

    for (week_no, week) in snapshots.iter().enumerate() {
        if args.profile == "outage" && week_no > 0 {
            // The outage profile additionally takes one cloud fully down
            // between weeks, verifying a k-of-n restore mid-outage.
            let victim = week_no % 4;
            store.fail_cloud(victim);
            plans[victim].set_outage(true);
            let first = &snapshots[0][0];
            let restored = store
                .restore(first.user, &first.pathname())
                .map_err(|e| format!("mid-outage restore failed: {e}"))?;
            if restored != first.materialize().concat() {
                return Err("mid-outage restore returned wrong bytes".into());
            }
            plans[victim].set_outage(false);
            store.recover_cloud(victim);
        }
        for snapshot in week {
            store
                .backup_chunks(snapshot.user, &snapshot.pathname(), &snapshot.materialize())
                .map_err(|e| format!("backup of {} failed: {e}", snapshot.pathname()))?;
        }
        eprintln!("chaos_replay: week {week_no} backed up");
    }
    store.flush().map_err(|e| format!("flush failed: {e}"))?;

    for snapshot in snapshots.last().expect("non-empty workload") {
        let restored = store
            .restore(snapshot.user, &snapshot.pathname())
            .map_err(|e| format!("restore of {} failed: {e}", snapshot.pathname()))?;
        if restored != snapshot.materialize().concat() {
            return Err(format!(
                "restore of {} returned wrong bytes",
                snapshot.pathname()
            ));
        }
    }
    Ok(plans)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("chaos_replay: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "chaos_replay: seed={} profile={} {}",
        args.seed,
        args.profile,
        if args.smoke { "smoke" } else { "full" }
    );
    match run(&args) {
        Ok(plans) => {
            for (cloud, plan) in plans.iter().enumerate() {
                println!("=== cloud {cloud} ===");
                print!("{}", plan.render_schedule());
            }
            eprintln!("chaos_replay: workload survived every injected fault");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chaos_replay: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
