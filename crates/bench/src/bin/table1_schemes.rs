//! Table 1: comparison of secret sharing algorithms — confidentiality degree
//! and storage blowup, analytic and measured on real splits.
//!
//! Run with `cargo run --release -p cdstore-bench --bin table1_schemes`.

use cdstore_secretsharing::{build_scheme, SchemeKind};

fn main() {
    let n = 4usize;
    let k = 3usize;
    let secret_size = 8 * 1024usize;
    let secret: Vec<u8> = (0..secret_size).map(|i| (i * 53 % 256) as u8).collect();

    println!("Table 1: Comparison of secret sharing algorithms ((n, k) = ({n}, {k}), {secret_size}-byte secret)");
    println!(
        "{:<18} {:>20} {:>18} {:>18} {:>14}",
        "Algorithm", "Confidentiality r", "Blowup (formula)", "Blowup (measured)", "Deduplicable"
    );

    for kind in SchemeKind::ALL {
        let scheme = build_scheme(kind, n, k, None).expect("valid scheme");
        let formula = scheme.storage_blowup(secret_size);
        let shares = scheme.split(&secret).expect("split");
        let measured: usize = shares.iter().map(|s| s.len()).sum();
        let measured_blowup = measured as f64 / secret_size as f64;
        println!(
            "{:<18} {:>20} {:>18.4} {:>18.4} {:>14}",
            kind.to_string(),
            format!("r = {}", scheme.confidentiality_degree()),
            formula,
            measured_blowup,
            if scheme.is_convergent() { "yes" } else { "no" },
        );
    }

    println!();
    println!("RSSS trade-off (n = {n}, k = {k}): r from 0 to k-1");
    println!("{:<8} {:>18}", "r", "Blowup (measured)");
    for r in 0..k {
        let scheme = build_scheme(SchemeKind::Rsss, n, k, Some(r)).expect("valid scheme");
        let shares = scheme.split(&secret).expect("split");
        let measured: usize = shares.iter().map(|s| s.len()).sum();
        println!("{:<8} {:>18.4}", r, measured as f64 / secret_size as f64);
    }
}
