//! Figure 5(a): encoding speeds of CAONT-RS, AONT-RS, and CAONT-RS-Rivest
//! versus the number of coding threads, with (n, k) = (4, 3).
//!
//! Run with `cargo run --release -p cdstore-bench --bin fig5a_encoding_threads [data_mb]`.
//! The paper uses 2 GB of random data; the default here is 64 MB to keep the
//! harness fast — pass a larger size for steadier numbers.

use cdstore_bench::encodebench::{buffered_encode_speed, streamed_encode_speed};
use cdstore_bench::{encoding_speed, random_secrets};
use cdstore_chunking::{ChunkerConfig, ChunkerKind};
use cdstore_secretsharing::{AontRs, CaontRs, CaontRsRivest, SecretSharing};

fn main() {
    let data_mb: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let secrets = random_secrets(data_mb * 1024 * 1024, 8 * 1024, 7);
    let (n, k) = (4, 3);

    let caont = CaontRs::new(n, k).unwrap();
    let aont = AontRs::new(n, k).unwrap();
    let rivest = CaontRsRivest::new(n, k).unwrap();
    let schemes: [(&str, &(dyn SecretSharing + Sync)); 3] = [
        ("CAONT-RS", &caont),
        ("AONT-RS", &aont),
        ("CAONT-RS-Rivest", &rivest),
    ];

    println!("Figure 5(a): encoding speed (MB/s) vs number of threads, (n, k) = ({n}, {k}), {data_mb} MB of random data");
    println!(
        "{:<10} {:>14} {:>14} {:>18}",
        "Threads", "CAONT-RS", "AONT-RS", "CAONT-RS-Rivest"
    );
    for threads in 1..=4usize {
        let mut row = Vec::new();
        for (_, scheme) in &schemes {
            row.push(encoding_speed(*scheme, &secrets, threads));
        }
        println!(
            "{:<10} {:>14.1} {:>14.1} {:>18.1}",
            threads, row[0], row[1], row[2]
        );
    }
    println!();
    println!("Paper (Local-i5, 2 threads): CAONT-RS 183 MB/s, with CAONT-RS 19-27% above AONT-RS");
    println!("and 54-61% above CAONT-RS-Rivest; speeds increase with threads on both machines.");

    // Companion series: the full chunk+encode data path (CAONT-RS, Rabin
    // chunking) through the buffered batch coder vs the streamed
    // bounded-memory pipeline — the streamed column should track the
    // buffered one within ~10%.
    let flat = secrets.concat();
    let chunk_config = ChunkerConfig::default();
    println!();
    println!("Chunk+encode data path, CAONT-RS with Rabin chunking, same data:");
    println!(
        "{:<10} {:>16} {:>16}",
        "Threads", "Buffered (MB/s)", "Streamed (MB/s)"
    );
    for threads in 1..=4usize {
        let buffered =
            buffered_encode_speed(&caont, ChunkerKind::Rabin, chunk_config, &flat, threads);
        let streamed =
            streamed_encode_speed(&caont, ChunkerKind::Rabin, chunk_config, &flat, threads);
        println!("{threads:<10} {buffered:>16.1} {:>16.1}", streamed.mbps);
    }
}
