//! Perf trajectory for the low-level encode kernels: GF(2^8) region
//! primitives and SHA-256, per ISA backend, written to `BENCH_kernels.json`
//! so this and future PRs leave a comparable curve (companion to
//! `bench_encode`'s `BENCH_encode.json`).
//!
//! ```text
//! cargo run --release -p cdstore_bench --bin bench_kernels [-- out_path] [region_mb | --smoke]
//! ```
//!
//! Defaults: `BENCH_kernels.json` in the current directory, 8 MB regions.
//! `--smoke` (as the second argument) shrinks the regions and repetitions
//! for CI sanity runs. Every backend reported by the runtime detectors is
//! measured; the `speedup_vs_scalar` column is the acceptance criterion for
//! the SIMD kernels (≥ 4x for `mul_acc` on SIMD-capable hosts).

use serde::Serialize;

use cdstore_bench::fmt_speed;
use cdstore_bench::kernelbench::{
    gf_kernel_all_backends, sha_batch_speed, sha_single_speed, KernelSpeed,
};
use cdstore_crypto::sha256;
use cdstore_gf::region;

/// One measured (kernel, backend) row.
#[derive(Serialize)]
struct KernelRow {
    kernel: String,
    backend: &'static str,
    mbps: f64,
    /// This backend's throughput over the scalar baseline for the same
    /// kernel; 1.0 for the scalar rows themselves.
    speedup_vs_scalar: f64,
}

/// The whole snapshot written to `BENCH_kernels.json`.
#[derive(Serialize)]
struct BenchKernels {
    schema_version: u32,
    region_bytes: usize,
    reps: usize,
    /// Backend the production dispatch selected on this host.
    gf_active_backend: &'static str,
    sha_active_backend: &'static str,
    rows: Vec<KernelRow>,
}

fn rows_from(kernel: &str, speeds: &[KernelSpeed]) -> Vec<KernelRow> {
    let scalar = speeds
        .iter()
        .find(|s| s.backend == "scalar")
        .expect("scalar backend is always available")
        .mbps;
    speeds
        .iter()
        .map(|s| KernelRow {
            kernel: kernel.to_string(),
            backend: s.backend,
            mbps: s.mbps,
            speedup_vs_scalar: s.mbps / scalar,
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("BENCH_kernels.json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let (region_bytes, reps, sha_lanes) = if smoke {
        (256 * 1024, 5, 16)
    } else {
        let mb: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(8);
        (mb * 1024 * 1024, 9, 64)
    };

    let mut rows = Vec::new();
    for kernel in ["xor", "mul", "mul_acc"] {
        let speeds = gf_kernel_all_backends(kernel, region_bytes, reps);
        for s in &speeds {
            println!("gf/{kernel:<8} {:<7} {}", s.backend, fmt_speed(s.mbps));
        }
        rows.extend(rows_from(&format!("gf/{kernel}"), &speeds));
    }

    // SHA-256: one long message (the streaming hasher) and a batch of
    // share-sized messages (the client's fingerprint loop).
    let share_len = 4096;
    for backend in sha256::Backend::available() {
        let single = sha_single_speed(backend, region_bytes, reps);
        println!(
            "sha256/single   {:<7} {}",
            backend.name(),
            fmt_speed(single)
        );
        rows.push(KernelRow {
            kernel: "sha256/single".to_string(),
            backend: backend.name(),
            mbps: single,
            speedup_vs_scalar: 1.0, // patched below once scalar is known
        });
        let batch = sha_batch_speed(backend, share_len, sha_lanes, reps);
        println!("sha256/batch    {:<7} {}", backend.name(), fmt_speed(batch));
        rows.push(KernelRow {
            kernel: "sha256/batch".to_string(),
            backend: backend.name(),
            mbps: batch,
            speedup_vs_scalar: 1.0,
        });
    }
    for kernel in ["sha256/single", "sha256/batch"] {
        let scalar = rows
            .iter()
            .find(|r| r.kernel == kernel && r.backend == "scalar")
            .expect("scalar backend is always available")
            .mbps;
        for row in rows.iter_mut().filter(|r| r.kernel == kernel) {
            row.speedup_vs_scalar = row.mbps / scalar;
        }
    }

    let snapshot = BenchKernels {
        schema_version: 1,
        region_bytes,
        reps,
        gf_active_backend: region::Backend::active().name(),
        sha_active_backend: sha256::Backend::active().name(),
        rows,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("serialise snapshot");
    std::fs::write(out_path, &json).expect("write BENCH_kernels.json");
    println!(
        "active backends: gf={} sha={}; wrote {out_path}",
        snapshot.gf_active_backend, snapshot.sha_active_backend
    );
}
