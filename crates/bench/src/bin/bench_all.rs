//! Nightly driver: runs every figure-regenerating binary with fixed seeds
//! and collects one machine-readable `BENCH_figs.json`.
//!
//! The nightly workflow (`.github/workflows/nightly.yml`) invokes this once
//! per night so the repo accumulates a comparable perf trajectory across
//! PRs; the PR workflow invokes it with `--smoke` as a cheap path check
//! that every figure binary still runs end to end.
//!
//! Each figure binary is found next to this executable (they are all built
//! by `cargo build --release --bins -p cdstore_bench`), run as a child
//! process, and its wall-clock time, exit status, and output recorded. The
//! driver exits nonzero if any figure fails, but always writes the JSON
//! first so a partial night still leaves evidence.
//!
//! ```text
//! cargo build --release --bins -p cdstore_bench
//! target/release/bench_all [--smoke] [--out BENCH_figs.json]
//! ```

use std::path::PathBuf;
use std::process::{Command, ExitCode};
use std::time::Instant;

use serde::Serialize;

/// One figure binary run.
#[derive(Serialize)]
struct FigRun {
    name: &'static str,
    args: Vec<String>,
    ok: bool,
    seconds: f64,
    /// Captured stdout — the figure's printed table.
    stdout: String,
    /// Captured stderr, kept only when the run failed.
    stderr: String,
}

/// The whole snapshot written to `BENCH_figs.json`.
#[derive(Serialize)]
struct BenchAll {
    schema_version: u32,
    mode: &'static str,
    runs: Vec<FigRun>,
}

/// The figure battery: `(binary, smoke args, full args)`. Full runs use
/// each binary's own defaults, which are already sized for a nightly
/// budget; smoke runs shrink every knob to a path check.
const FIGS: &[(&str, &[&str], &[&str])] = &[
    ("fig5a_encoding_threads", &["8"], &[]),
    ("fig5b_encoding_n", &["8"], &[]),
    ("fig6_dedup", &["1"], &[]),
    ("fig7a_baseline_transfer", &["8"], &[]),
    ("fig7b_trace_transfer", &["8"], &[]),
    ("fig8_multi_client", &["2", "--wire"], &[]),
    ("fig9_cost", &[], &[]),
    ("fig_recovery", &["500"], &[]),
    ("fig_space_reclaim", &["4", "64", "50"], &[]),
];

fn sibling(name: &str) -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe
        .parent()
        .ok_or_else(|| String::from("current_exe has no parent directory"))?;
    let path = dir.join(name);
    if path.is_file() {
        Ok(path)
    } else {
        Err(format!(
            "{} not found next to bench_all — build the full battery first: \
             cargo build --release --bins -p cdstore_bench",
            path.display()
        ))
    }
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_figs.json");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("bench_all: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("bench_all: unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Resolve every binary up front: a missing sibling should fail the
    // night immediately and name the build command, not surface as one
    // mysteriously absent figure.
    let mut resolved = Vec::new();
    for (name, smoke_args, full_args) in FIGS {
        match sibling(name) {
            Ok(path) => resolved.push((*name, path, if smoke { smoke_args } else { full_args })),
            Err(e) => {
                eprintln!("bench_all: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut runs = Vec::new();
    let mut failed = false;
    for (name, path, args) in resolved {
        eprintln!("bench_all: running {name} {}...", args.join(" "));
        let started = Instant::now();
        let output = Command::new(&path).args(args.iter()).output();
        let seconds = started.elapsed().as_secs_f64();
        let run = match output {
            Ok(output) => FigRun {
                name,
                args: args.iter().map(|a| a.to_string()).collect(),
                ok: output.status.success(),
                seconds,
                stdout: String::from_utf8_lossy(&output.stdout).into_owned(),
                stderr: if output.status.success() {
                    String::new()
                } else {
                    String::from_utf8_lossy(&output.stderr).into_owned()
                },
            },
            Err(e) => FigRun {
                name,
                args: args.iter().map(|a| a.to_string()).collect(),
                ok: false,
                seconds,
                stdout: String::new(),
                stderr: format!("failed to spawn: {e}"),
            },
        };
        if !run.ok {
            failed = true;
            eprintln!("bench_all: {name} FAILED after {seconds:.1}s");
        } else {
            eprintln!("bench_all: {name} ok ({seconds:.1}s)");
        }
        runs.push(run);
    }

    let snapshot = BenchAll {
        schema_version: 1,
        mode: if smoke { "smoke" } else { "full" },
        runs,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("bench_all: writing {out_path} failed: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("bench_all: wrote {out_path}");
    if failed {
        eprintln!("bench_all: at least one figure failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
