//! Space reclamation under churn: how many backend bytes the reference-
//! counted delete path plus the container vacuum (`CdStore::gc`) give back,
//! and how fast.
//!
//! Each round backs up a fleet of per-user files (with a cross-user shared
//! block so inter-user dedup references interleave), deletes a churn
//! fraction of them, runs a vacuum, and reports the backend bytes reclaimed
//! and the reclaim throughput. The final round deletes everything, which
//! must empty the backends — the paper defers deletion to future work
//! (§4.7); this measures the subsystem that closes that gap.
//!
//! Run with
//! `cargo run --release -p cdstore_bench --bin fig_space_reclaim \
//!  [files_per_user] [file_kb] [churn_percent]`.

use std::time::Instant;

use cdstore_bench::random_secrets;
use cdstore_core::{CdStore, CdStoreConfig};

const USERS: u64 = 4;
const ROUNDS: usize = 3;

fn backend_mb(store: &CdStore) -> f64 {
    store.stats().backend_bytes.iter().sum::<u64>() as f64 / (1024.0 * 1024.0)
}

fn main() {
    let files_per_user: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let file_kb: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(512);
    let churn_percent: usize = std::env::args()
        .nth(3)
        .and_then(|a| a.parse().ok())
        .unwrap_or(75);

    let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
    println!(
        "Space reclamation, (n, k) = (4, 3): {USERS} users x {files_per_user} files x {file_kb} KB, \
         {churn_percent}% churn per round"
    );
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>12} {:>12} {:>12}",
        "Round", "Before MB", "After MB", "Reclaimed MB", "MB/s", "Compacted", "Deleted"
    );

    let mut survivors: Vec<(u64, String, Vec<u8>)> = Vec::new();
    for round in 0..ROUNDS {
        // Build this round's fleet: per-user private data plus a block every
        // user shares, so reclamation has to respect cross-user references.
        let shared = random_secrets(file_kb * 1024 / 4, 8 * 1024, round as u64).concat();
        let mut fleet = Vec::new();
        for user in 1..=USERS {
            for file in 0..files_per_user {
                let seed = 1 + round as u64 * 10_000 + user * 100 + file as u64;
                let mut data = random_secrets(file_kb * 1024, 8 * 1024, seed).concat();
                data.extend_from_slice(&shared);
                let path = format!("/u{user}/r{round}/f{file}.tar");
                store.backup(user, &path, &data).expect("backup succeeds");
                fleet.push((user, path, data));
            }
        }
        store.flush().expect("flush succeeds");
        let before = backend_mb(&store);

        // Churn: the last round deletes everything, earlier rounds a slice.
        let victims = if round == ROUNDS - 1 {
            fleet.len()
        } else {
            fleet.len() * churn_percent / 100
        };
        for (user, path, _) in fleet.drain(..victims) {
            store.delete(user, &path).expect("delete succeeds");
        }
        survivors.extend(fleet);
        if round == ROUNDS - 1 {
            for (user, path, _) in survivors.drain(..) {
                store.delete(user, &path).expect("delete succeeds");
            }
        }

        let start = Instant::now();
        let report = store.gc().expect("gc succeeds");
        let elapsed = start.elapsed().as_secs_f64();
        let after = backend_mb(&store);
        let reclaimed_mb = report.reclaimed_bytes as f64 / (1024.0 * 1024.0);
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>14.1} {:>12.1} {:>12} {:>12}",
            round + 1,
            before,
            after,
            reclaimed_mb,
            reclaimed_mb / elapsed.max(1e-9),
            report.containers_compacted,
            report.containers_deleted
        );

        // Survivors must stay byte-exact through every vacuum.
        for (user, path, data) in &survivors {
            assert_eq!(
                &store.restore(*user, path).expect("survivor restores"),
                data,
                "survivor {path} corrupted by reclamation"
            );
        }
    }

    let final_mb = backend_mb(&store);
    println!();
    println!(
        "Final backend footprint after deleting every file and vacuuming: {final_mb:.2} MB \
         (the acceptance bar is a >= 90% shrink; an empty deployment reports 0.00)"
    );
}
