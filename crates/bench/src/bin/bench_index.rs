//! Perf trajectory for the dedup index: loads seeded pseudo-fingerprints
//! into the memory-resident and disk-backed `KvStore` and writes
//! `BENCH_index.json`, so this and future PRs leave a comparable curve.
//!
//! ```text
//! cargo run --release -p cdstore_bench --bin bench_index [-- out_path] [entries]
//! ```
//!
//! Defaults: `BENCH_index.json` in the current directory, 10⁶ fingerprints.
//! The disk store is exercised at the full requested scale; the memory
//! store is capped (it exists as the RSS baseline, not the headline) and
//! the cap is recorded in the snapshot. All keys are seeded; run-to-run
//! variance comes only from the machine, never the workload.

use serde::Serialize;

use cdstore_bench::indexbench::{disk_run, memory_run, IndexRunReport};

/// Fingerprints beyond which the memory-resident baseline is not grown
/// (the disk store is the scaling story; the memory row is a footprint
/// reference point).
const MEMORY_CAP: u64 = 2_000_000;

/// The whole snapshot written to `BENCH_index.json`.
#[derive(Serialize)]
struct BenchIndex {
    schema_version: u32,
    /// Fingerprints requested on the command line.
    entries: u64,
    /// Entries the memory row actually loaded (`min(entries, cap)`).
    memory_entries: u64,
    seed: u64,
    memory: IndexRunReport,
    disk: IndexRunReport,
    /// disk resident bytes ÷ memory resident bytes, scaled to the same
    /// entry count — the headline "index outgrows RAM" ratio.
    disk_to_memory_resident_ratio: f64,
}

fn main() {
    let mut out_path = String::from("BENCH_index.json");
    let mut entries: u64 = 1_000_000;
    for arg in std::env::args().skip(1) {
        if let Ok(n) = arg.parse() {
            entries = n;
        } else {
            out_path = arg;
        }
    }
    let seed = 0xcd57_0001;
    let memory_entries = entries.min(MEMORY_CAP);

    eprintln!("bench_index: memory store, {memory_entries} fingerprints...");
    let memory = memory_run(memory_entries, seed);

    let dir = std::env::temp_dir().join(format!("cdstore-bench-index-{}", std::process::id()));
    eprintln!(
        "bench_index: disk store, {entries} fingerprints under {}...",
        dir.display()
    );
    let disk = disk_run(entries, seed, &dir);
    std::fs::remove_dir_all(&dir).ok();

    // Normalise the footprint comparison to per-entry cost before taking
    // the ratio, since the two rows may have loaded different counts.
    let memory_per_entry = memory.resident_bytes as f64 / memory_entries.max(1) as f64;
    let disk_per_entry = disk.resident_bytes as f64 / entries.max(1) as f64;
    let snapshot = BenchIndex {
        schema_version: 1,
        entries,
        memory_entries,
        seed,
        disk_to_memory_resident_ratio: disk_per_entry / memory_per_entry.max(f64::MIN_POSITIVE),
        memory,
        disk,
    };

    let json = serde_json::to_string_pretty(&snapshot).expect("serialise snapshot");
    std::fs::write(&out_path, format!("{json}\n")).expect("write snapshot");
    eprintln!("bench_index: wrote {out_path}");
    println!("{json}");
}
