//! Figure 7(a): baseline single-client transfer speeds — upload of unique
//! data, upload of duplicate data, and download — on the LAN and cloud
//! testbeds with (n, k) = (4, 3).
//!
//! The client-side computation speed is measured on this machine; the LAN
//! and cloud rows are simulated from the Table 2 profiles (see
//! `cdstore_bench::transfer` for the model). A third, fully *measured* row
//! drives the same client against four real `cdstore_net` servers over
//! loopback TCP — no model at all, every share crossing a socket.
//!
//! Run with `cargo run --release -p cdstore-bench --bin fig7a_baseline_transfer [data_mb]`.

use cdstore_bench::netbench::wire_single_speeds;
use cdstore_bench::transfer::SingleClientModel;
use cdstore_bench::{chunk_and_encode_speed, decoding_speed, random_secrets};
use cdstore_secretsharing::CaontRs;

fn main() {
    let data_mb: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let (n, k) = (4usize, 3usize);
    let scheme = CaontRs::new(n, k).unwrap();

    // Measure the client's computation stages on this machine. The CDStore
    // client parallelises coding across cores (§4.6); use the available
    // parallelism so the computation stage reflects a fully driven client.
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    let flat: Vec<u8> = random_secrets(data_mb * 1024 * 1024, 8 * 1024, 3).concat();
    let secrets = random_secrets(data_mb * 1024 * 1024, 8 * 1024, 4);
    let compute_mbps = chunk_and_encode_speed(&scheme, &flat, threads);
    let decode_mbps = decoding_speed(&scheme, &secrets, threads);

    let logical_mb = 2048.0;
    let per_cloud_unique = vec![logical_mb / k as f64; n];
    let no_transfer = vec![0.0; n];

    println!("Figure 7(a): single-client baseline transfer speeds (MB/s), (n, k) = ({n}, {k})");
    println!("(measured client compute: chunk+encode {compute_mbps:.1} MB/s, decode {decode_mbps:.1} MB/s)");
    println!(
        "{:<10} {:>16} {:>16} {:>12}",
        "Testbed", "Upload (uniq)", "Upload (dup)", "Download"
    );
    for (name, model) in [
        ("LAN", SingleClientModel::lan(n, k, compute_mbps)),
        ("Cloud", SingleClientModel::commercial(k, compute_mbps)),
    ] {
        let up_uniq = model.upload_speed(logical_mb, &per_cloud_unique);
        let up_dup = model.upload_speed(logical_mb, &no_transfer);
        let down = model.download_speed(logical_mb, decode_mbps);
        println!("{name:<10} {up_uniq:>16.1} {up_dup:>16.1} {down:>12.1}");
    }
    // The measured row: real sockets on loopback, no flow model.
    let wire = wire_single_speeds(data_mb * 1024 * 1024);
    println!(
        "{:<10} {:>16.1} {:>16.1} {:>12.1}",
        "Loopback*", wire.upload_unique, wire.upload_duplicate, wire.download
    );
    println!();
    println!("(* measured end to end over real loopback TCP against 4 cdstore_net servers;");
    println!("   loopback has no NIC ceiling, so it sits between the LAN model and pure compute)");
    println!("Paper: LAN 77.5 / 149.9 / 99.2 MB/s; Cloud 6.2 / 57.1 / 12.3 MB/s.");
    println!(
        "Shape to verify: LAN upload(uniq) ~ k/n of the effective network speed; upload(dup) is"
    );
    println!("compute-bound; download ~10% below the network; the cloud dup/uniq gap is much larger (>5x).");
}
