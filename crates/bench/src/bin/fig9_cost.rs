//! Figure 9: monetary cost savings of CDStore over the AONT-RS multi-cloud
//! baseline and the single-cloud baseline.
//!
//! * Figure 9(a): savings versus the weekly backup size (0.25–256 TB) at a
//!   fixed 10x deduplication ratio.
//! * Figure 9(b): savings versus the deduplication ratio (1–50x) at a fixed
//!   16 TB weekly backup size.
//!
//! Run with `cargo run --release -p cdstore-bench --bin fig9_cost`.

use cdstore_cost::{CostModel, Scenario, TB};

fn main() {
    let model = CostModel::new();

    println!("Figure 9(a): cost savings vs weekly backup size (dedup ratio 10x, 26-week retention, (4, 3))");
    println!(
        "{:<14} {:>14} {:>16} {:>16} {:>14} {:>16} {:>18}",
        "Weekly (TB)",
        "CDStore $/mo",
        "AONT-RS $/mo",
        "1-cloud $/mo",
        "Instance",
        "vs AONT-RS",
        "vs single-cloud"
    );
    let mut weekly_tb = 0.25;
    while weekly_tb <= 256.0 {
        let c = model.evaluate(&Scenario::case_study(weekly_tb * TB, 10.0));
        println!(
            "{:<14} {:>14.0} {:>16.0} {:>16.0} {:>14} {:>15.1}% {:>17.1}%",
            weekly_tb,
            c.cdstore.total_usd(),
            c.aont_rs.total_usd(),
            c.single_cloud.total_usd(),
            c.cdstore.instance.as_deref().unwrap_or("-"),
            c.saving_vs_aont_rs() * 100.0,
            c.saving_vs_single_cloud() * 100.0
        );
        weekly_tb *= 2.0;
    }

    println!();
    println!("Figure 9(b): cost savings vs deduplication ratio (weekly backup 16 TB)");
    println!(
        "{:<14} {:>14} {:>16} {:>18}",
        "Dedup ratio", "CDStore $/mo", "vs AONT-RS", "vs single-cloud"
    );
    for ratio in [1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        let c = model.evaluate(&Scenario::case_study(16.0 * TB, ratio));
        println!(
            "{:<14} {:>14.0} {:>15.1}% {:>17.1}%",
            ratio,
            c.cdstore.total_usd(),
            c.saving_vs_aont_rs() * 100.0,
            c.saving_vs_single_cloud() * 100.0
        );
    }
    println!();
    println!(
        "Paper: at 16 TB weekly and 10x dedup, the single-cloud and AONT-RS systems cost about"
    );
    println!("US$12,250 and US$16,400 per month; CDStore costs about US$3,540 including VM costs,");
    println!(
        "a saving of at least 70%; savings grow with the weekly size and the dedup ratio, and sit"
    );
    println!(
        "around 70-80% for ratios of 10-50x; the jagged steps come from EC2 instance switching."
    );
}
