//! Dedup-index scale measurements: loads seeded pseudo-fingerprints into a
//! [`KvStore`] (memory-resident or disk-backed) and measures insert and
//! lookup throughput plus the resident footprint — the perf-trajectory
//! harness behind `bench_index` → `BENCH_index.json`.
//!
//! The disk rows are the point: the paper-scale question is whether the
//! share index can outgrow RAM (10⁷+ fingerprints) while hot lookups stay
//! block-cache-bound rather than backend-bound, with the cache's byte
//! budget standing in for the resident-set cost.

use std::sync::Arc;
use std::time::Instant;

use cdstore_index::{BlockCacheStats, KvStore, KvStoreConfig};
use cdstore_storage::{DirBackend, StorageBackend};
use serde::Serialize;

/// How many lookups each timed pass performs (clamped to the entry count).
const LOOKUPS_PER_PASS: usize = 100_000;
/// Size of the repeatedly-probed working set in the hot pass.
const HOT_WORKING_SET: usize = 512;

/// One measured store configuration.
#[derive(Debug, Serialize)]
pub struct IndexRunReport {
    /// `"memory"` or `"disk"`.
    pub mode: String,
    /// Fingerprints loaded.
    pub entries: u64,
    /// Sustained insert throughput while loading (keys/s).
    pub inserts_per_sec: f64,
    /// Uniform-random lookups over the whole keyspace against a freshly
    /// (re)opened store — every disk probe misses the block cache.
    pub cold_lookups_per_sec: f64,
    /// Repeated lookups over a small working set — disk probes are served
    /// by the block cache after the first touch.
    pub hot_lookups_per_sec: f64,
    /// Lookups of absent keys — measures how well the per-run Bloom
    /// filters short-circuit the probe.
    pub negative_lookups_per_sec: f64,
    /// Run probes the Bloom filters skipped across all passes.
    pub bloom_skips: u64,
    /// LSM runs on disk (or frozen in memory) after the load settled.
    pub run_count: usize,
    /// Resident footprint proxy: memtable + run metadata + Bloom bits +
    /// cached blocks. For the disk store this is what actually occupies
    /// RAM; the key/value payload lives on the backend.
    pub resident_bytes: u64,
    /// Bytes the backend holds (0 for the memory store).
    pub backend_bytes: u64,
    /// Block-cache counters after the hot pass (`None` in memory mode).
    pub cache: Option<CacheReport>,
}

/// Serializable mirror of [`BlockCacheStats`].
#[derive(Debug, Serialize)]
pub struct CacheReport {
    /// Block fetches served from the cache.
    pub hits: u64,
    /// Block fetches that touched the backend.
    pub misses: u64,
    /// Blocks evicted to stay within the byte budget.
    pub evictions: u64,
    /// High-water mark of cached bytes.
    pub peak_bytes: u64,
    /// Configured byte budget.
    pub capacity_bytes: u64,
}

impl From<BlockCacheStats> for CacheReport {
    fn from(s: BlockCacheStats) -> Self {
        CacheReport {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            peak_bytes: s.peak_bytes as u64,
            capacity_bytes: s.capacity_bytes as u64,
        }
    }
}

/// Deterministic 32-byte pseudo-fingerprint for index position `i` —
/// splitmix64 over four lanes, so any count of keys is generated on the
/// fly without materialising the keyspace.
pub fn fingerprint_bytes(i: u64, seed: u64) -> [u8; 32] {
    let mut out = [0u8; 32];
    for lane in 0..4u64 {
        let mut z = i
            .wrapping_add(seed)
            .wrapping_add(lane.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        out[lane as usize * 8..][..8].copy_from_slice(&z.to_le_bytes());
    }
    out
}

/// The 16-byte stand-in for a share-index entry (container id + location).
fn value_bytes(i: u64) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&i.to_le_bytes());
    out[8..].copy_from_slice(&(i ^ 0xcd57_0000).to_le_bytes());
    out
}

/// Tuning used by both measured stores, sized so the disk store's resident
/// state stays far below the loaded keyspace.
pub fn bench_config() -> KvStoreConfig {
    KvStoreConfig {
        memtable_capacity: 256 * 1024,
        ..KvStoreConfig::default()
    }
}

/// Cheap deterministic index stream for lookup passes.
fn probe_order(count: u64, salt: u64) -> impl Iterator<Item = u64> {
    (0..).map(move |i: u64| {
        let mut z = i.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(salt);
        z ^= z >> 29;
        z.wrapping_mul(0x9e37_79b9_7f4a_7c15) % count.max(1)
    })
}

fn load(store: &mut KvStore, entries: u64, seed: u64) -> f64 {
    let start = Instant::now();
    for i in 0..entries {
        store.put(fingerprint_bytes(i, seed).to_vec(), value_bytes(i).to_vec());
    }
    store.flush();
    entries as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Times `lookups` probes drawn from `indexes`, panicking if any present
/// key fails to resolve (`expect_hits`).
fn lookup_pass(
    store: &mut KvStore,
    seed: u64,
    lookups: usize,
    indexes: impl Iterator<Item = u64>,
    expect_hits: bool,
) -> f64 {
    let start = Instant::now();
    let mut found = 0usize;
    for i in indexes.take(lookups) {
        if store.get(&fingerprint_bytes(i, seed)).is_some() {
            found += 1;
        }
    }
    let rate = lookups as f64 / start.elapsed().as_secs_f64().max(1e-9);
    if expect_hits {
        assert_eq!(found, lookups, "loaded fingerprints must all resolve");
    } else {
        assert_eq!(found, 0, "absent fingerprints must not resolve");
    }
    rate
}

/// Runs the three lookup passes and assembles the report for `store`.
fn measure(
    mut store: KvStore,
    mode: &str,
    entries: u64,
    seed: u64,
    backend_bytes: u64,
) -> IndexRunReport {
    let lookups = LOOKUPS_PER_PASS.min(entries as usize).max(1);
    let cold = lookup_pass(&mut store, seed, lookups, probe_order(entries, 11), true);
    let working = HOT_WORKING_SET.min(entries as usize) as u64;
    let hot = lookup_pass(&mut store, seed, lookups, probe_order(working, 13), true);
    // Negative keys: generate from a disjoint seed so none were loaded.
    let negative = lookup_pass(
        &mut store,
        seed ^ 0xdead_beef,
        lookups,
        probe_order(entries, 17),
        false,
    );
    IndexRunReport {
        mode: mode.into(),
        entries,
        inserts_per_sec: 0.0, // caller fills in
        cold_lookups_per_sec: cold,
        hot_lookups_per_sec: hot,
        negative_lookups_per_sec: negative,
        bloom_skips: store.stats().bloom_skips,
        run_count: store.run_count(),
        resident_bytes: store.approximate_size() as u64,
        backend_bytes,
        cache: store.cache_stats().map(CacheReport::from),
    }
}

/// Loads and measures a memory-resident store.
pub fn memory_run(entries: u64, seed: u64) -> IndexRunReport {
    let mut store = KvStore::with_config(bench_config());
    let inserts = load(&mut store, entries, seed);
    let mut report = measure(store, "memory", entries, seed, 0);
    report.inserts_per_sec = inserts;
    report
}

/// Loads a disk-backed store under `dir`, then reopens it cold off the
/// backend before measuring, so the cold pass sees an empty block cache.
pub fn disk_run(entries: u64, seed: u64, dir: &std::path::Path) -> IndexRunReport {
    let backend: Arc<dyn StorageBackend> =
        Arc::new(DirBackend::new(dir).expect("create bench backend dir"));
    let mut store = KvStore::create(Arc::clone(&backend), "bench", bench_config())
        .expect("create disk-backed bench store");
    let inserts = load(&mut store, entries, seed);
    drop(store);
    let store = KvStore::open(Arc::clone(&backend), "bench", bench_config())
        .expect("reopen disk-backed bench store");
    let backend_bytes = backend.total_bytes().unwrap_or(0);
    let mut report = measure(store, "disk", entries, seed, backend_bytes);
    report.inserts_per_sec = inserts;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_distinct_and_deterministic() {
        let a = fingerprint_bytes(1, 42);
        assert_eq!(a, fingerprint_bytes(1, 42));
        assert_ne!(a, fingerprint_bytes(2, 42));
        assert_ne!(a, fingerprint_bytes(1, 43));
    }

    #[test]
    fn memory_run_smoke() {
        let report = memory_run(5_000, 1);
        assert_eq!(report.entries, 5_000);
        assert!(report.cold_lookups_per_sec > 0.0);
        assert!(report.cache.is_none());
    }

    #[test]
    fn disk_run_smoke() {
        let dir = std::env::temp_dir().join(format!("cdstore-indexbench-{}", std::process::id()));
        let report = disk_run(5_000, 1, &dir);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(report.entries, 5_000);
        assert!(report.backend_bytes > 0);
        let cache = report.cache.expect("disk mode has a block cache");
        assert!(cache.hits > 0, "hot pass must hit the cache");
        assert!(cache.peak_bytes <= cache.capacity_bytes);
    }
}
