//! Property tests for the FastCDC chunker and the incremental cutter API:
//! boundaries must not depend on how the input is sliced across `Read`
//! calls, and configured size bounds must always hold.

use std::io::Read;

use cdstore_chunking::{Chunk, ChunkStream, Chunker, ChunkerConfig, ChunkerKind, FastCdcChunker};
use proptest::prelude::*;

/// Yields the input in segments of the given lengths (then the remainder),
/// modelling arbitrary short reads from a file or socket.
struct SegmentedReader {
    data: Vec<u8>,
    segments: Vec<usize>,
    pos: usize,
    next_segment: usize,
}

impl Read for SegmentedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.data.len() - self.pos;
        let segment = if self.next_segment < self.segments.len() {
            let s = self.segments[self.next_segment].max(1);
            self.next_segment += 1;
            s
        } else {
            remaining
        };
        let n = remaining.min(segment).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn kind_from_index(i: usize) -> ChunkerKind {
    ChunkerKind::ALL[i % ChunkerKind::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn boundaries_invariant_under_read_slicing(
        data in proptest::collection::vec(any::<u8>(), 0..60_000),
        segments in proptest::collection::vec(1usize..5000, 0..40),
        buffer_size in 1usize..20_000,
        kind_index in 0usize..3,
    ) {
        let kind = kind_from_index(kind_index);
        let config = ChunkerConfig::new(128, 1024, 4096);
        let chunker = kind.build(config);
        let buffered = chunker.chunk(&data);

        let reader = SegmentedReader {
            data: data.clone(),
            segments,
            pos: 0,
            next_segment: 0,
        };
        let streamed: Result<Vec<Chunk>, _> =
            ChunkStream::with_buffer_size(chunker.as_ref(), reader, buffer_size).collect();
        let streamed = streamed.expect("in-memory reads cannot fail");
        prop_assert_eq!(streamed, buffered);
    }

    #[test]
    fn fastcdc_respects_configured_bounds(
        data in proptest::collection::vec(any::<u8>(), 0..120_000),
        min_exp in 5u32..10,
        spread in 1u32..4,
    ) {
        // min = 2^min_exp, avg = min * 2^spread, max = 4 * avg: a lattice of
        // valid configurations covering small and large chunk regimes.
        let min = 1usize << min_exp;
        let avg = min << spread;
        let max = avg * 4;
        let config = ChunkerConfig::new(min, avg, max);
        let chunks = FastCdcChunker::new(config).chunk(&data);

        let total: usize = chunks.iter().map(Chunk::len).sum();
        prop_assert_eq!(total, data.len());
        let mut offset = 0usize;
        for (i, c) in chunks.iter().enumerate() {
            prop_assert_eq!(c.offset, offset);
            offset += c.len();
            prop_assert!(c.len() <= max, "chunk {} of {} exceeds max", i, c.len());
            if i + 1 < chunks.len() {
                prop_assert!(c.len() >= min, "chunk {} of {} below min", i, c.len());
            } else {
                prop_assert!(!c.is_empty());
            }
        }
    }

    #[test]
    fn fastcdc_is_slicing_invariant_at_the_cutter_level(
        data in proptest::collection::vec(any::<u8>(), 0..40_000),
        split in 0usize..40_000,
    ) {
        // Feed the input as two arbitrary slices directly through a cutter
        // and compare against the whole-buffer result.
        let config = ChunkerConfig::new(128, 1024, 4096);
        let chunker = FastCdcChunker::new(config);
        let expected: Vec<usize> = chunker.chunk(&data).iter().map(Chunk::len).collect();

        let split = split.min(data.len());
        let mut cutter = chunker.cutter();
        let mut lens = Vec::new();
        let mut open = 0usize;
        for piece in [&data[..split], &data[split..]] {
            let mut rest = piece;
            while !rest.is_empty() {
                match cutter.find_boundary(rest) {
                    Some(consumed) => {
                        lens.push(open + consumed);
                        open = 0;
                        rest = &rest[consumed..];
                    }
                    None => {
                        open += rest.len();
                        rest = &[];
                    }
                }
            }
        }
        if open > 0 {
            lens.push(open);
        }
        prop_assert_eq!(lens, expected);
    }
}
