//! Content-defined and fixed-size chunking for CDStore (§4.2).
//!
//! A CDStore client splits every backup file into *secrets* (chunks) before
//! convergent dispersal. The paper uses Rabin-fingerprint variable-size
//! chunking with an 8 KB average, 2 KB minimum, and 16 KB maximum chunk size
//! by default, and also supports fixed-size chunking (used for the VM image
//! dataset) and the faster FastCDC gear chunker. Deduplication effectiveness
//! depends on chunk boundaries being content-defined so insertions do not
//! shift every subsequent chunk.
//!
//! Every algorithm is exposed two ways: the buffer-at-once
//! [`Chunker::chunk`], and the incremental [`ChunkCutter`] /
//! [`ChunkStream`] pair that cuts chunks out of any [`std::io::Read`]
//! source with bounded memory. Both produce identical boundaries.
//!
//! # Examples
//!
//! ```
//! use cdstore_chunking::{Chunker, ChunkerConfig, RabinChunker};
//!
//! let data = vec![7u8; 100_000];
//! let chunker = RabinChunker::new(ChunkerConfig::default());
//! let chunks = chunker.chunk(&data);
//! let total: usize = chunks.iter().map(|c| c.data.len()).sum();
//! assert_eq!(total, data.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunker;
pub mod fastcdc;
pub mod rabin;
pub mod stream;

pub use chunker::{
    Chunk, ChunkCutter, Chunker, ChunkerConfig, ChunkerKind, FixedChunker, RabinChunker,
};
pub use fastcdc::FastCdcChunker;
pub use rabin::RabinHasher;
pub use stream::ChunkStream;
