//! Fixed-size and Rabin content-defined chunkers.

use cdstore_crypto::Fingerprint;

use crate::rabin::{RabinHasher, WINDOW_SIZE};

/// One chunk ("secret" in the paper's terminology) cut from an input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Byte offset of the chunk within the input.
    pub offset: usize,
    /// The chunk content.
    pub data: Vec<u8>,
}

impl Chunk {
    /// Length of the chunk in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// SHA-256 fingerprint of the chunk content.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of(&self.data)
    }
}

/// Configuration of chunk-size bounds.
///
/// Defaults follow §4.2: 8 KB average, 2 KB minimum, 16 KB maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkerConfig {
    /// Minimum chunk size in bytes (boundaries are not considered earlier).
    pub min_size: usize,
    /// Average (target) chunk size in bytes; must be a power of two for the
    /// Rabin boundary mask.
    pub avg_size: usize,
    /// Maximum chunk size in bytes (a boundary is forced at this size).
    pub max_size: usize,
}

impl Default for ChunkerConfig {
    fn default() -> Self {
        ChunkerConfig {
            min_size: 2 * 1024,
            avg_size: 8 * 1024,
            max_size: 16 * 1024,
        }
    }
}

impl ChunkerConfig {
    /// Creates a configuration, validating the size relationships.
    ///
    /// # Panics
    ///
    /// Panics if `min_size > avg_size`, `avg_size > max_size`, or `avg_size`
    /// is not a power of two.
    pub fn new(min_size: usize, avg_size: usize, max_size: usize) -> Self {
        assert!(min_size >= 1, "min_size must be at least 1");
        assert!(min_size <= avg_size, "min_size must not exceed avg_size");
        assert!(avg_size <= max_size, "avg_size must not exceed max_size");
        assert!(
            avg_size.is_power_of_two(),
            "avg_size must be a power of two"
        );
        ChunkerConfig {
            min_size,
            avg_size,
            max_size,
        }
    }

    /// The bit mask applied to the Rabin fingerprint: a boundary is declared
    /// when `fingerprint & mask == mask`, which happens with probability
    /// `1/avg_size` per byte for a uniform fingerprint.
    pub fn boundary_mask(&self) -> u64 {
        (self.avg_size as u64) - 1
    }
}

/// A chunking algorithm: splits a buffer into contiguous chunks.
pub trait Chunker {
    /// Splits `data` into chunks that concatenate back to `data`.
    fn chunk(&self, data: &[u8]) -> Vec<Chunk>;

    /// Human-readable name of the algorithm.
    fn name(&self) -> &'static str;
}

/// Fixed-size chunking: every chunk is exactly `size` bytes except the last.
#[derive(Debug, Clone)]
pub struct FixedChunker {
    size: usize,
}

impl FixedChunker {
    /// Creates a fixed-size chunker.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "chunk size must be positive");
        FixedChunker { size }
    }
}

impl Chunker for FixedChunker {
    fn chunk(&self, data: &[u8]) -> Vec<Chunk> {
        data.chunks(self.size)
            .enumerate()
            .map(|(i, piece)| Chunk {
                offset: i * self.size,
                data: piece.to_vec(),
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "fixed-size"
    }
}

/// Rabin-fingerprint content-defined chunking (the paper's default).
#[derive(Debug, Clone)]
pub struct RabinChunker {
    config: ChunkerConfig,
}

impl RabinChunker {
    /// Creates a content-defined chunker with the given size bounds.
    pub fn new(config: ChunkerConfig) -> Self {
        RabinChunker { config }
    }

    /// Returns the configuration in use.
    pub fn config(&self) -> ChunkerConfig {
        self.config
    }
}

impl Default for RabinChunker {
    fn default() -> Self {
        RabinChunker::new(ChunkerConfig::default())
    }
}

impl Chunker for RabinChunker {
    fn chunk(&self, data: &[u8]) -> Vec<Chunk> {
        let mask = self.config.boundary_mask();
        let mut chunks = Vec::new();
        let mut hasher = RabinHasher::new();
        let mut start = 0usize;
        let mut pos = 0usize;
        while pos < data.len() {
            let in_chunk = pos - start;
            // Skip hashing below min_size - WINDOW_SIZE: the window must be
            // warm by the time boundaries become eligible.
            if in_chunk + WINDOW_SIZE >= self.config.min_size {
                let fp = hasher.roll(data[pos]);
                let eligible = in_chunk + 1 >= self.config.min_size;
                let is_boundary = eligible && (fp & mask) == mask;
                let at_max = in_chunk + 1 >= self.config.max_size;
                if is_boundary || at_max {
                    chunks.push(Chunk {
                        offset: start,
                        data: data[start..=pos].to_vec(),
                    });
                    start = pos + 1;
                    hasher.reset();
                }
            }
            pos += 1;
        }
        if start < data.len() {
            chunks.push(Chunk {
                offset: start,
                data: data[start..].to_vec(),
            });
        }
        chunks
    }

    fn name(&self) -> &'static str {
        "rabin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    fn check_reassembly(chunks: &[Chunk], data: &[u8]) {
        let mut rebuilt = Vec::with_capacity(data.len());
        let mut expected_offset = 0usize;
        for c in chunks {
            assert_eq!(c.offset, expected_offset);
            rebuilt.extend_from_slice(&c.data);
            expected_offset += c.data.len();
        }
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn fixed_chunker_splits_exactly() {
        let data: Vec<u8> = (0..100).collect();
        let chunks = FixedChunker::new(32).chunk(&data);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), 32);
        assert_eq!(chunks[3].len(), 4);
        check_reassembly(&chunks, &data);
    }

    #[test]
    fn fixed_chunker_handles_empty_and_small_inputs() {
        assert!(FixedChunker::new(4096).chunk(&[]).is_empty());
        let chunks = FixedChunker::new(4096).chunk(&[1, 2, 3]);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].data, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn fixed_chunker_rejects_zero_size() {
        FixedChunker::new(0);
    }

    #[test]
    fn rabin_chunker_respects_size_bounds() {
        let config = ChunkerConfig::default();
        let data = random_data(1 << 20, 42);
        let chunks = RabinChunker::new(config).chunk(&data);
        check_reassembly(&chunks, &data);
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len() <= config.max_size, "chunk {i} exceeds max");
            if i + 1 < chunks.len() {
                assert!(c.len() >= config.min_size, "chunk {i} below min");
            }
        }
    }

    #[test]
    fn rabin_average_size_is_near_target() {
        let config = ChunkerConfig::default();
        let data = random_data(8 << 20, 7);
        let chunks = RabinChunker::new(config).chunk(&data);
        let avg = data.len() as f64 / chunks.len() as f64;
        // With min/max clamping the practical average sits between min and
        // max and in the broad vicinity of the 8 KB target.
        assert!(avg > 4.0 * 1024.0 && avg < 14.0 * 1024.0, "average {avg}");
    }

    #[test]
    fn rabin_boundaries_are_content_defined() {
        // Inserting bytes near the start only disturbs chunk boundaries in a
        // localised region; most boundaries (by content) are preserved.
        let config = ChunkerConfig::default();
        let original = random_data(2 << 20, 99);
        let mut shifted = original.clone();
        shifted.splice(1000..1000, [0xaau8; 7]);

        let chunker = RabinChunker::new(config);
        let chunks_a = chunker.chunk(&original);
        let chunks_b = chunker.chunk(&shifted);
        let fps_a: std::collections::HashSet<Fingerprint> =
            chunks_a.iter().map(|c| c.fingerprint()).collect();
        let shared = chunks_b
            .iter()
            .filter(|c| fps_a.contains(&c.fingerprint()))
            .count();
        // The vast majority of chunks must be unchanged.
        assert!(
            shared as f64 > 0.9 * chunks_b.len() as f64,
            "only {shared}/{} chunks shared after a 7-byte insert",
            chunks_b.len()
        );
    }

    #[test]
    fn fixed_chunking_is_fragile_to_shifts_unlike_rabin() {
        // Motivation for content-defined chunking: a small insert destroys
        // almost all fixed-size chunk identities.
        let original = random_data(1 << 20, 5);
        let mut shifted = original.clone();
        shifted.insert(0, 0x42);

        let fixed = FixedChunker::new(4096);
        let fps_a: std::collections::HashSet<Fingerprint> = fixed
            .chunk(&original)
            .iter()
            .map(|c| c.fingerprint())
            .collect();
        let chunks_b = fixed.chunk(&shifted);
        let shared = chunks_b
            .iter()
            .filter(|c| fps_a.contains(&c.fingerprint()))
            .count();
        assert!(
            (shared as f64) < 0.1 * chunks_b.len() as f64,
            "{shared}/{} fixed chunks unexpectedly survived the shift",
            chunks_b.len()
        );
    }

    #[test]
    fn rabin_chunking_is_deterministic() {
        let data = random_data(512 * 1024, 11);
        let chunker = RabinChunker::default();
        assert_eq!(chunker.chunk(&data), chunker.chunk(&data));
    }

    #[test]
    fn identical_regions_produce_identical_chunks() {
        // Two files sharing a large aligned region of content share most
        // chunk fingerprints — the basis of deduplication savings.
        let shared_region = random_data(1 << 20, 3);
        let mut file_a = random_data(64 * 1024, 4);
        file_a.extend_from_slice(&shared_region);
        let mut file_b = random_data(200 * 1024, 6);
        file_b.extend_from_slice(&shared_region);

        let chunker = RabinChunker::default();
        let fps_a: std::collections::HashSet<Fingerprint> = chunker
            .chunk(&file_a)
            .iter()
            .map(|c| c.fingerprint())
            .collect();
        let chunks_b = chunker.chunk(&file_b);
        let shared = chunks_b
            .iter()
            .filter(|c| fps_a.contains(&c.fingerprint()))
            .count();
        assert!(shared as f64 > 0.7 * chunks_b.len() as f64);
    }

    #[test]
    fn chunker_config_validation() {
        let cfg = ChunkerConfig::new(1024, 4096, 8192);
        assert_eq!(cfg.boundary_mask(), 4095);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn chunker_config_rejects_non_power_of_two_average() {
        ChunkerConfig::new(1024, 5000, 8192);
    }

    #[test]
    fn small_inputs_form_a_single_chunk() {
        let chunker = RabinChunker::default();
        assert!(chunker.chunk(&[]).is_empty());
        let chunks = chunker.chunk(&[9u8; 100]);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].data.len(), 100);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn chunks_always_reassemble(data in proptest::collection::vec(any::<u8>(), 0..100_000)) {
            let chunker = RabinChunker::new(ChunkerConfig::new(256, 1024, 4096));
            let chunks = chunker.chunk(&data);
            check_reassembly(&chunks, &data);
            for (i, c) in chunks.iter().enumerate() {
                prop_assert!(c.len() <= 4096);
                if i + 1 < chunks.len() {
                    prop_assert!(c.len() >= 256);
                }
            }
        }
    }
}
