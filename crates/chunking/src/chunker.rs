//! Chunker trait, incremental cutters, and the fixed-size and Rabin
//! content-defined chunkers.

use cdstore_crypto::Fingerprint;

use crate::fastcdc::FastCdcChunker;
use crate::rabin::{RabinHasher, WINDOW_SIZE};

/// One chunk ("secret" in the paper's terminology) cut from an input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Byte offset of the chunk within the input.
    pub offset: usize,
    /// The chunk content.
    pub data: Vec<u8>,
}

impl Chunk {
    /// Length of the chunk in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// SHA-256 fingerprint of the chunk content.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of(&self.data)
    }
}

/// Configuration of chunk-size bounds.
///
/// Defaults follow §4.2: 8 KB average, 2 KB minimum, 16 KB maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkerConfig {
    /// Minimum chunk size in bytes (boundaries are not considered earlier).
    pub min_size: usize,
    /// Average (target) chunk size in bytes; must be a power of two for the
    /// Rabin boundary mask.
    pub avg_size: usize,
    /// Maximum chunk size in bytes (a boundary is forced at this size).
    pub max_size: usize,
}

impl Default for ChunkerConfig {
    fn default() -> Self {
        ChunkerConfig {
            min_size: 2 * 1024,
            avg_size: 8 * 1024,
            max_size: 16 * 1024,
        }
    }
}

impl ChunkerConfig {
    /// Creates a configuration, validating the size relationships.
    ///
    /// # Panics
    ///
    /// Panics if `min_size > avg_size`, `avg_size > max_size`, or `avg_size`
    /// is not a power of two.
    pub fn new(min_size: usize, avg_size: usize, max_size: usize) -> Self {
        assert!(min_size >= 1, "min_size must be at least 1");
        assert!(min_size <= avg_size, "min_size must not exceed avg_size");
        assert!(avg_size <= max_size, "avg_size must not exceed max_size");
        assert!(
            avg_size.is_power_of_two(),
            "avg_size must be a power of two"
        );
        ChunkerConfig {
            min_size,
            avg_size,
            max_size,
        }
    }

    /// The bit mask applied to the Rabin fingerprint: a boundary is declared
    /// when `fingerprint & mask == mask`, which happens with probability
    /// `1/avg_size` per byte for a uniform fingerprint.
    pub fn boundary_mask(&self) -> u64 {
        (self.avg_size as u64) - 1
    }
}

/// The incremental core of a chunking algorithm: a resumable boundary
/// scanner that can be fed the input in arbitrary slices.
///
/// A cutter carries the state of the chunk currently being cut (rolling-hash
/// window, bytes consumed so far), so boundary decisions depend only on the
/// byte stream, never on how callers slice it across calls. This is the
/// contract that makes the streamed and buffered data paths cut identical
/// chunks.
pub trait ChunkCutter: Send {
    /// Scans `input` — the bytes immediately following everything this cutter
    /// has already consumed for the current chunk — and returns
    /// `Some(consumed)` where `consumed` counts bytes up to and including the
    /// chunk's final byte, or `None` if the whole slice was consumed with the
    /// chunk still open.
    ///
    /// After `Some` the cutter is ready for the next chunk; the caller
    /// resubmits `input[consumed..]` (and subsequent reads) to continue.
    fn find_boundary(&mut self, input: &[u8]) -> Option<usize>;

    /// Discards any partial-chunk state, returning to the start-of-chunk
    /// state (as if freshly created).
    fn reset(&mut self);
}

/// A chunking algorithm: splits a byte stream into contiguous chunks.
///
/// Implementors provide a stateful [`ChunkCutter`]; the buffer-at-once
/// [`chunk`](Chunker::chunk) method is derived from it, so both entry points
/// share one boundary decision per algorithm.
pub trait Chunker {
    /// Creates a fresh incremental cutter for this algorithm.
    fn cutter(&self) -> Box<dyn ChunkCutter>;

    /// Human-readable name of the algorithm.
    fn name(&self) -> &'static str;

    /// Splits `data` into chunks that concatenate back to `data`.
    fn chunk(&self, data: &[u8]) -> Vec<Chunk> {
        let mut cutter = self.cutter();
        let mut chunks = Vec::new();
        let mut start = 0usize;
        while start < data.len() {
            let end = match cutter.find_boundary(&data[start..]) {
                Some(consumed) => start + consumed,
                None => data.len(),
            };
            chunks.push(Chunk {
                offset: start,
                data: data[start..end].to_vec(),
            });
            start = end;
        }
        chunks
    }
}

/// Fixed-size chunking: every chunk is exactly `size` bytes except the last.
#[derive(Debug, Clone)]
pub struct FixedChunker {
    size: usize,
}

impl FixedChunker {
    /// Creates a fixed-size chunker.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "chunk size must be positive");
        FixedChunker { size }
    }
}

struct FixedCutter {
    size: usize,
    in_chunk: usize,
}

impl ChunkCutter for FixedCutter {
    fn find_boundary(&mut self, input: &[u8]) -> Option<usize> {
        let remaining = self.size - self.in_chunk;
        if input.len() >= remaining {
            self.in_chunk = 0;
            Some(remaining)
        } else {
            self.in_chunk += input.len();
            None
        }
    }

    fn reset(&mut self) {
        self.in_chunk = 0;
    }
}

impl Chunker for FixedChunker {
    fn cutter(&self) -> Box<dyn ChunkCutter> {
        Box::new(FixedCutter {
            size: self.size,
            in_chunk: 0,
        })
    }

    fn name(&self) -> &'static str {
        "fixed-size"
    }
}

/// Rabin-fingerprint content-defined chunking (the paper's default).
#[derive(Debug, Clone)]
pub struct RabinChunker {
    config: ChunkerConfig,
}

impl RabinChunker {
    /// Creates a content-defined chunker with the given size bounds.
    pub fn new(config: ChunkerConfig) -> Self {
        RabinChunker { config }
    }

    /// Returns the configuration in use.
    pub fn config(&self) -> ChunkerConfig {
        self.config
    }
}

impl Default for RabinChunker {
    fn default() -> Self {
        RabinChunker::new(ChunkerConfig::default())
    }
}

struct RabinCutter {
    config: ChunkerConfig,
    mask: u64,
    hasher: RabinHasher,
    in_chunk: usize,
}

impl ChunkCutter for RabinCutter {
    fn find_boundary(&mut self, input: &[u8]) -> Option<usize> {
        let min = self.config.min_size;
        let max = self.config.max_size;
        for (i, &byte) in input.iter().enumerate() {
            // Skip hashing below min_size - WINDOW_SIZE: the window must be
            // warm by the time boundaries become eligible.
            if self.in_chunk + WINDOW_SIZE >= min {
                let fp = self.hasher.roll(byte);
                let eligible = self.in_chunk + 1 >= min;
                let is_boundary = eligible && (fp & self.mask) == self.mask;
                let at_max = self.in_chunk + 1 >= max;
                if is_boundary || at_max {
                    self.reset();
                    return Some(i + 1);
                }
            }
            self.in_chunk += 1;
        }
        None
    }

    fn reset(&mut self) {
        self.hasher.reset();
        self.in_chunk = 0;
    }
}

impl Chunker for RabinChunker {
    fn cutter(&self) -> Box<dyn ChunkCutter> {
        Box::new(RabinCutter {
            config: self.config,
            mask: self.config.boundary_mask(),
            // Built once per cutter: RabinHasher::new() computes the mod/out
            // tables, which is far too expensive per chunk.
            hasher: RabinHasher::new(),
            in_chunk: 0,
        })
    }

    fn name(&self) -> &'static str {
        "rabin"
    }
}

/// Selects one of the built-in chunking algorithms by name — the
/// configuration surface clients expose for the chunking stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkerKind {
    /// Fixed-size chunks of `avg_size` bytes (the paper's VM-image mode).
    Fixed,
    /// Rabin-fingerprint content-defined chunking (the paper's default).
    Rabin,
    /// FastCDC gear-hash content-defined chunking (several times faster than
    /// Rabin at equivalent dedup behaviour).
    FastCdc,
}

impl ChunkerKind {
    /// All built-in kinds, in display order.
    pub const ALL: [ChunkerKind; 3] =
        [ChunkerKind::Fixed, ChunkerKind::Rabin, ChunkerKind::FastCdc];

    /// Instantiates the chosen algorithm with `config` size bounds.
    pub fn build(self, config: ChunkerConfig) -> Box<dyn Chunker + Send + Sync> {
        match self {
            ChunkerKind::Fixed => Box::new(FixedChunker::new(config.avg_size)),
            ChunkerKind::Rabin => Box::new(RabinChunker::new(config)),
            ChunkerKind::FastCdc => Box::new(FastCdcChunker::new(config)),
        }
    }

    /// The algorithm's display name (matches [`Chunker::name`]).
    pub fn name(self) -> &'static str {
        match self {
            ChunkerKind::Fixed => "fixed-size",
            ChunkerKind::Rabin => "rabin",
            ChunkerKind::FastCdc => "fastcdc",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    fn check_reassembly(chunks: &[Chunk], data: &[u8]) {
        let mut rebuilt = Vec::with_capacity(data.len());
        let mut expected_offset = 0usize;
        for c in chunks {
            assert_eq!(c.offset, expected_offset);
            rebuilt.extend_from_slice(&c.data);
            expected_offset += c.data.len();
        }
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn fixed_chunker_splits_exactly() {
        let data: Vec<u8> = (0..100).collect();
        let chunks = FixedChunker::new(32).chunk(&data);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), 32);
        assert_eq!(chunks[3].len(), 4);
        check_reassembly(&chunks, &data);
    }

    #[test]
    fn fixed_chunker_handles_empty_and_small_inputs() {
        assert!(FixedChunker::new(4096).chunk(&[]).is_empty());
        let chunks = FixedChunker::new(4096).chunk(&[1, 2, 3]);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].data, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn fixed_chunker_rejects_zero_size() {
        FixedChunker::new(0);
    }

    #[test]
    fn rabin_chunker_respects_size_bounds() {
        let config = ChunkerConfig::default();
        let data = random_data(1 << 20, 42);
        let chunks = RabinChunker::new(config).chunk(&data);
        check_reassembly(&chunks, &data);
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len() <= config.max_size, "chunk {i} exceeds max");
            if i + 1 < chunks.len() {
                assert!(c.len() >= config.min_size, "chunk {i} below min");
            }
        }
    }

    #[test]
    fn rabin_average_size_is_near_target() {
        let config = ChunkerConfig::default();
        let data = random_data(8 << 20, 7);
        let chunks = RabinChunker::new(config).chunk(&data);
        let avg = data.len() as f64 / chunks.len() as f64;
        // With min/max clamping the practical average sits between min and
        // max and in the broad vicinity of the 8 KB target.
        assert!(avg > 4.0 * 1024.0 && avg < 14.0 * 1024.0, "average {avg}");
    }

    #[test]
    fn rabin_boundaries_are_content_defined() {
        // Inserting bytes near the start only disturbs chunk boundaries in a
        // localised region; most boundaries (by content) are preserved.
        let config = ChunkerConfig::default();
        let original = random_data(2 << 20, 99);
        let mut shifted = original.clone();
        shifted.splice(1000..1000, [0xaau8; 7]);

        let chunker = RabinChunker::new(config);
        let chunks_a = chunker.chunk(&original);
        let chunks_b = chunker.chunk(&shifted);
        let fps_a: std::collections::HashSet<Fingerprint> =
            chunks_a.iter().map(|c| c.fingerprint()).collect();
        let shared = chunks_b
            .iter()
            .filter(|c| fps_a.contains(&c.fingerprint()))
            .count();
        // The vast majority of chunks must be unchanged.
        assert!(
            shared as f64 > 0.9 * chunks_b.len() as f64,
            "only {shared}/{} chunks shared after a 7-byte insert",
            chunks_b.len()
        );
    }

    #[test]
    fn fixed_chunking_is_fragile_to_shifts_unlike_rabin() {
        // Motivation for content-defined chunking: a small insert destroys
        // almost all fixed-size chunk identities.
        let original = random_data(1 << 20, 5);
        let mut shifted = original.clone();
        shifted.insert(0, 0x42);

        let fixed = FixedChunker::new(4096);
        let fps_a: std::collections::HashSet<Fingerprint> = fixed
            .chunk(&original)
            .iter()
            .map(|c| c.fingerprint())
            .collect();
        let chunks_b = fixed.chunk(&shifted);
        let shared = chunks_b
            .iter()
            .filter(|c| fps_a.contains(&c.fingerprint()))
            .count();
        assert!(
            (shared as f64) < 0.1 * chunks_b.len() as f64,
            "{shared}/{} fixed chunks unexpectedly survived the shift",
            chunks_b.len()
        );
    }

    #[test]
    fn rabin_chunking_is_deterministic() {
        let data = random_data(512 * 1024, 11);
        let chunker = RabinChunker::default();
        assert_eq!(chunker.chunk(&data), chunker.chunk(&data));
    }

    #[test]
    fn identical_regions_produce_identical_chunks() {
        // Two files sharing a large aligned region of content share most
        // chunk fingerprints — the basis of deduplication savings.
        let shared_region = random_data(1 << 20, 3);
        let mut file_a = random_data(64 * 1024, 4);
        file_a.extend_from_slice(&shared_region);
        let mut file_b = random_data(200 * 1024, 6);
        file_b.extend_from_slice(&shared_region);

        let chunker = RabinChunker::default();
        let fps_a: std::collections::HashSet<Fingerprint> = chunker
            .chunk(&file_a)
            .iter()
            .map(|c| c.fingerprint())
            .collect();
        let chunks_b = chunker.chunk(&file_b);
        let shared = chunks_b
            .iter()
            .filter(|c| fps_a.contains(&c.fingerprint()))
            .count();
        assert!(shared as f64 > 0.7 * chunks_b.len() as f64);
    }

    #[test]
    fn chunker_config_validation() {
        let cfg = ChunkerConfig::new(1024, 4096, 8192);
        assert_eq!(cfg.boundary_mask(), 4095);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn chunker_config_rejects_non_power_of_two_average() {
        ChunkerConfig::new(1024, 5000, 8192);
    }

    #[test]
    fn small_inputs_form_a_single_chunk() {
        let chunker = RabinChunker::default();
        assert!(chunker.chunk(&[]).is_empty());
        let chunks = chunker.chunk(&[9u8; 100]);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].data.len(), 100);
    }

    #[test]
    fn cutter_boundaries_are_invariant_under_input_slicing() {
        // Feeding the same stream in different slice granularities must cut
        // identical chunks — the core contract of the incremental API.
        let config = ChunkerConfig::new(256, 1024, 4096);
        let data = random_data(200_000, 21);
        for kind in ChunkerKind::ALL {
            let chunker = kind.build(config);
            let whole = chunker.chunk(&data);
            for step in [1usize, 7, 64, 1000, 4096] {
                let mut cutter = chunker.cutter();
                let mut lens = Vec::new();
                let mut open = 0usize; // bytes consumed into the open chunk
                for piece in data.chunks(step) {
                    let mut rest = piece;
                    while !rest.is_empty() {
                        match cutter.find_boundary(rest) {
                            Some(consumed) => {
                                lens.push(open + consumed);
                                open = 0;
                                rest = &rest[consumed..];
                            }
                            None => {
                                open += rest.len();
                                rest = &[];
                            }
                        }
                    }
                }
                if open > 0 {
                    lens.push(open);
                }
                let expected: Vec<usize> = whole.iter().map(Chunk::len).collect();
                assert_eq!(lens, expected, "{} step {step}", kind.name());
            }
        }
    }

    #[test]
    fn cutter_reset_discards_partial_chunk_state() {
        let config = ChunkerConfig::new(256, 1024, 4096);
        let data = random_data(50_000, 33);
        for kind in ChunkerKind::ALL {
            let chunker = kind.build(config);
            let mut cutter = chunker.cutter();
            // Pollute the cutter with a partial scan, then reset: results
            // must match a fresh cutter's.
            assert!(cutter.find_boundary(&data[..100]).is_none());
            cutter.reset();
            let a = cutter.find_boundary(&data);
            let b = chunker.cutter().find_boundary(&data);
            assert_eq!(a, b, "{}", kind.name());
        }
    }

    #[test]
    fn chunker_kind_names_match_instances() {
        for kind in ChunkerKind::ALL {
            let chunker = kind.build(ChunkerConfig::default());
            assert_eq!(chunker.name(), kind.name());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn chunks_always_reassemble(data in proptest::collection::vec(any::<u8>(), 0..100_000)) {
            let chunker = RabinChunker::new(ChunkerConfig::new(256, 1024, 4096));
            let chunks = chunker.chunk(&data);
            check_reassembly(&chunks, &data);
            for (i, c) in chunks.iter().enumerate() {
                prop_assert!(c.len() <= 4096);
                if i + 1 < chunks.len() {
                    prop_assert!(c.len() >= 256);
                }
            }
        }
    }
}
