//! Rabin fingerprinting \[49\]: a rolling hash over a sliding byte window.
//!
//! The fingerprint of a window is the residue of the window's bytes,
//! interpreted as a polynomial over GF(2), modulo a fixed irreducible
//! polynomial. Because the hash "rolls" — the fingerprint after sliding the
//! window one byte can be computed from the previous fingerprint in O(1) —
//! it is the standard primitive for content-defined chunk boundaries.

/// The fixed degree-64 modulus polynomial used for the fingerprint (the
/// `x^64` term is implicit; this constant encodes the lower 64 coefficients).
pub const IRREDUCIBLE_POLY: u64 = 0xbfe6b8a5bf378d83;

/// Size of the sliding window in bytes.
pub const WINDOW_SIZE: usize = 48;

/// Precomputed tables for O(1) rolling updates.
#[derive(Clone)]
struct Tables {
    /// `mod_table[b]` = reduction of `b << 64` modulo the polynomial.
    mod_table: [u64; 256],
    /// `out_table[b]` = contribution of byte `b` leaving the window.
    out_table: [u64; 256],
}

fn poly_mod_step(fp: u64, byte: u8, mod_table: &[u64; 256]) -> u64 {
    let top = (fp >> 56) as u8;
    ((fp << 8) | byte as u64) ^ mod_table[top as usize]
}

fn build_tables() -> Tables {
    // mod_table[b] = (b * x^64) mod P: start from the residue b and multiply
    // by x sixty-four times, reducing whenever the degree-64 term appears
    // (x^64 ≡ IRREDUCIBLE_POLY mod P).
    let mut mod_table = [0u64; 256];
    for b in 0..256u64 {
        let mut remainder = b;
        for _ in 0..64 {
            let carry = remainder >> 63;
            remainder <<= 1;
            if carry != 0 {
                remainder ^= IRREDUCIBLE_POLY;
            }
        }
        mod_table[b as usize] = remainder;
    }
    // out_table[b] = (b * x^(8*(WINDOW_SIZE-1))) mod P: the contribution of
    // the byte about to leave the window, removed just before the next shift.
    let mut out_table = [0u64; 256];
    for (b, slot) in out_table.iter_mut().enumerate() {
        let mut fp = poly_mod_step(0, b as u8, &mod_table);
        for _ in 0..WINDOW_SIZE - 1 {
            fp = poly_mod_step(fp, 0, &mod_table);
        }
        *slot = fp;
    }
    Tables {
        mod_table,
        out_table,
    }
}

/// A rolling Rabin fingerprint over a fixed-size window.
#[derive(Clone)]
pub struct RabinHasher {
    tables: Tables,
    window: [u8; WINDOW_SIZE],
    pos: usize,
    filled: usize,
    fingerprint: u64,
}

impl Default for RabinHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl RabinHasher {
    /// Creates a hasher with an empty window.
    pub fn new() -> Self {
        RabinHasher {
            tables: build_tables(),
            window: [0u8; WINDOW_SIZE],
            pos: 0,
            filled: 0,
            fingerprint: 0,
        }
    }

    /// Resets the window and fingerprint without rebuilding the tables.
    pub fn reset(&mut self) {
        self.window = [0u8; WINDOW_SIZE];
        self.pos = 0;
        self.filled = 0;
        self.fingerprint = 0;
    }

    /// Slides one byte into the window and returns the updated fingerprint.
    #[inline]
    pub fn roll(&mut self, byte: u8) -> u64 {
        let outgoing = self.window[self.pos];
        self.window[self.pos] = byte;
        self.pos = (self.pos + 1) % WINDOW_SIZE;
        if self.filled < WINDOW_SIZE {
            self.filled += 1;
        } else {
            // Remove the contribution of the byte leaving the window.
            self.fingerprint ^= self.tables.out_table[outgoing as usize];
        }
        self.fingerprint = poly_mod_step(self.fingerprint, byte, &self.tables.mod_table);
        self.fingerprint
    }

    /// Returns the current fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Computes the fingerprint of an entire buffer from scratch (no
    /// windowing) — used by tests to validate the rolling update.
    pub fn fingerprint_of(&self, data: &[u8]) -> u64 {
        let mut fp = 0u64;
        for &b in data {
            fp = poly_mod_step(fp, b, &self.tables.mod_table);
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rolling_matches_full_recompute_once_window_filled() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 37 % 251) as u8).collect();
        let mut hasher = RabinHasher::new();
        for (i, &b) in data.iter().enumerate() {
            let rolled = hasher.roll(b);
            if i + 1 >= WINDOW_SIZE {
                let window = &data[i + 1 - WINDOW_SIZE..=i];
                let expected = hasher.fingerprint_of(window);
                assert_eq!(rolled, expected, "position {i}");
            }
        }
    }

    #[test]
    fn fingerprint_depends_only_on_window_content() {
        // Two streams that end with the same WINDOW_SIZE bytes give the same
        // fingerprint — the property that makes chunking content-defined.
        let tail: Vec<u8> = (0..WINDOW_SIZE as u32)
            .map(|i| (i * 7 % 256) as u8)
            .collect();
        let mut stream_a = vec![1u8; 200];
        stream_a.extend_from_slice(&tail);
        let mut stream_b = vec![9u8; 500];
        stream_b.extend_from_slice(&tail);

        let mut ha = RabinHasher::new();
        for &b in &stream_a {
            ha.roll(b);
        }
        let mut hb = RabinHasher::new();
        for &b in &stream_b {
            hb.roll(b);
        }
        assert_eq!(ha.fingerprint(), hb.fingerprint());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = RabinHasher::new();
        for b in 0..200u8 {
            h.roll(b);
        }
        assert_ne!(h.fingerprint(), 0);
        h.reset();
        assert_eq!(h.fingerprint(), 0);
        let mut fresh = RabinHasher::new();
        for b in [1u8, 2, 3] {
            assert_eq!(h.roll(b), fresh.roll(b));
        }
    }

    #[test]
    fn fingerprints_spread_over_the_mask_space() {
        // Boundary selection uses the low bits; check they are not constant.
        let mut h = RabinHasher::new();
        let mut low_bits = std::collections::HashSet::new();
        let data: Vec<u8> = (0..100_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for &b in &data {
            let fp = h.roll(b);
            low_bits.insert(fp & 0x1fff);
        }
        // With 100k samples over a 13-bit space nearly every value appears.
        assert!(
            low_bits.len() > 4000,
            "only {} distinct low-bit patterns",
            low_bits.len()
        );
    }

    proptest! {
        #[test]
        fn same_window_same_fingerprint(prefix_a in proptest::collection::vec(any::<u8>(), 0..300),
                                        prefix_b in proptest::collection::vec(any::<u8>(), 0..300),
                                        window in proptest::collection::vec(any::<u8>(), WINDOW_SIZE)) {
            let mut ha = RabinHasher::new();
            for &b in prefix_a.iter().chain(&window) {
                ha.roll(b);
            }
            let mut hb = RabinHasher::new();
            for &b in prefix_b.iter().chain(&window) {
                hb.roll(b);
            }
            prop_assert_eq!(ha.fingerprint(), hb.fingerprint());
        }
    }
}
