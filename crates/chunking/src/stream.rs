//! Incremental chunking of an [`std::io::Read`] source.
//!
//! [`ChunkStream`] drives a [`ChunkCutter`] over a fixed-size read buffer and
//! emits chunks as they are cut, so memory stays bounded by
//! `read buffer + one max-size chunk` regardless of input length. Because the
//! cutter's boundary decisions are invariant under input slicing, the chunks
//! are byte-identical to what [`Chunker::chunk`] produces on the whole input
//! in memory.

use std::io::{ErrorKind, Read};

use crate::chunker::{Chunk, ChunkCutter, Chunker};

/// Default size of the internal read buffer.
pub const DEFAULT_READ_BUFFER: usize = 64 * 1024;

/// Streams chunks out of a reader, one [`ChunkCutter`] boundary at a time.
///
/// Use [`next_chunk_into`](ChunkStream::next_chunk_into) to cut into a
/// caller-owned (poolable) buffer, or the [`Iterator`] impl for owned
/// [`Chunk`]s.
pub struct ChunkStream<R> {
    reader: R,
    cutter: Box<dyn ChunkCutter>,
    buf: Box<[u8]>,
    /// Valid bytes in `buf`.
    filled: usize,
    /// Bytes of `buf` already handed to the cutter.
    scanned: usize,
    /// Absolute offset of the next chunk's first byte.
    offset: usize,
    eof: bool,
}

impl<R: Read> ChunkStream<R> {
    /// Starts streaming `reader` through `chunker`'s algorithm with the
    /// default read-buffer size.
    pub fn new(chunker: &dyn Chunker, reader: R) -> Self {
        ChunkStream::with_buffer_size(chunker, reader, DEFAULT_READ_BUFFER)
    }

    /// Starts streaming with an explicit read-buffer size (must be > 0).
    /// Chunk boundaries do not depend on this size — only memory use and
    /// syscall granularity do.
    pub fn with_buffer_size(chunker: &dyn Chunker, reader: R, buffer_size: usize) -> Self {
        assert!(buffer_size > 0, "read buffer must be non-empty");
        ChunkStream {
            reader,
            cutter: chunker.cutter(),
            buf: vec![0u8; buffer_size].into_boxed_slice(),
            filled: 0,
            scanned: 0,
            offset: 0,
            eof: false,
        }
    }

    /// Absolute byte offset of the next chunk to be emitted (equivalently,
    /// total bytes emitted so far).
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Cuts the next chunk into `out` (cleared first), returning `false` at
    /// end of input. `out`'s capacity is reused across calls, which is the
    /// allocation-free path the encode pipeline runs on.
    pub fn next_chunk_into(&mut self, out: &mut Vec<u8>) -> std::io::Result<bool> {
        out.clear();
        loop {
            if self.scanned == self.filled {
                if self.eof {
                    break;
                }
                match self.reader.read(&mut self.buf) {
                    Ok(0) => {
                        self.eof = true;
                        continue;
                    }
                    Ok(n) => {
                        self.filled = n;
                        self.scanned = 0;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            let pending = &self.buf[self.scanned..self.filled];
            match self.cutter.find_boundary(pending) {
                Some(consumed) => {
                    out.extend_from_slice(&pending[..consumed]);
                    self.scanned += consumed;
                    self.offset += out.len();
                    return Ok(true);
                }
                None => {
                    out.extend_from_slice(pending);
                    self.scanned = self.filled;
                }
            }
        }
        if out.is_empty() {
            Ok(false)
        } else {
            // Trailing partial chunk at end of input.
            self.cutter.reset();
            self.offset += out.len();
            Ok(true)
        }
    }
}

impl<R: Read> Iterator for ChunkStream<R> {
    type Item = std::io::Result<Chunk>;

    fn next(&mut self) -> Option<Self::Item> {
        let offset = self.offset;
        let mut data = Vec::new();
        match self.next_chunk_into(&mut data) {
            Ok(true) => Some(Ok(Chunk { offset, data })),
            Ok(false) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::{ChunkerConfig, ChunkerKind};
    use rand::{Rng, SeedableRng};

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    /// A reader that returns at most `cap` bytes per call, exercising
    /// short-read resilience.
    struct DribbleReader<'a> {
        data: &'a [u8],
        pos: usize,
        cap: usize,
    }

    impl Read for DribbleReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = (self.data.len() - self.pos).min(self.cap).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn stream_matches_buffered_for_all_kinds() {
        let config = ChunkerConfig::new(256, 1024, 4096);
        let data = random_data(150_000, 8);
        for kind in ChunkerKind::ALL {
            let chunker = kind.build(config);
            let buffered = chunker.chunk(&data);
            let streamed: Vec<Chunk> = ChunkStream::new(chunker.as_ref(), &data[..])
                .map(|c| c.expect("in-memory read"))
                .collect();
            assert_eq!(streamed, buffered, "{}", kind.name());
        }
    }

    #[test]
    fn stream_is_invariant_under_read_granularity_and_buffer_size() {
        let config = ChunkerConfig::new(256, 1024, 4096);
        let data = random_data(100_000, 9);
        let chunker = ChunkerKind::FastCdc.build(config);
        let expected = chunker.chunk(&data);
        for cap in [1usize, 13, 512, 100_000] {
            for buffer_size in [64usize, 4096, 1 << 20] {
                let reader = DribbleReader {
                    data: &data,
                    pos: 0,
                    cap,
                };
                let streamed: Vec<Chunk> =
                    ChunkStream::with_buffer_size(chunker.as_ref(), reader, buffer_size)
                        .map(|c| c.expect("dribble read"))
                        .collect();
                assert_eq!(streamed, expected, "cap {cap} buffer {buffer_size}");
            }
        }
    }

    #[test]
    fn next_chunk_into_reuses_the_buffer() {
        let data = random_data(50_000, 10);
        let chunker = ChunkerKind::Rabin.build(ChunkerConfig::new(256, 1024, 4096));
        let mut stream = ChunkStream::new(chunker.as_ref(), &data[..]);
        let mut buf = Vec::new();
        let mut rebuilt = Vec::new();
        let mut chunks = 0usize;
        while stream.next_chunk_into(&mut buf).expect("read") {
            rebuilt.extend_from_slice(&buf);
            chunks += 1;
        }
        assert_eq!(rebuilt, data);
        assert!(chunks > 5);
        assert_eq!(stream.offset(), data.len());
        // Exhausted stream keeps reporting end-of-input.
        assert!(!stream.next_chunk_into(&mut buf).expect("read"));
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let chunker = ChunkerKind::Rabin.build(ChunkerConfig::default());
        assert_eq!(ChunkStream::new(chunker.as_ref(), &[][..]).count(), 0);
    }

    #[test]
    fn read_errors_propagate() {
        struct FailingReader;
        impl Read for FailingReader {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let chunker = ChunkerKind::FastCdc.build(ChunkerConfig::default());
        let mut stream = ChunkStream::new(chunker.as_ref(), FailingReader);
        let err = stream.next().expect("one item").expect_err("must fail");
        assert_eq!(err.kind(), ErrorKind::Other);
    }
}
