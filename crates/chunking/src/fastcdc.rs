//! FastCDC gear-hash content-defined chunking \[Xia et al., ATC'16\].
//!
//! FastCDC replaces the Rabin rolling hash with a *gear* hash — one shift,
//! one table lookup, and one add per byte — and recovers the chunk-size
//! distribution Rabin gets from its uniform fingerprint by *normalized
//! chunking*: below the target size the boundary test uses a mask with more
//! set bits (boundaries rarer), above it a mask with fewer (boundaries more
//! likely). Because the gear hash shifts one bit per byte, only the last 64
//! bytes influence the hash, so boundaries stay content-defined: hashing can
//! start 64 bytes before the minimum chunk size and still be fully warm at
//! the first eligible boundary.
//!
//! The cut points differ from [`RabinChunker`](crate::RabinChunker)'s — the
//! two algorithms do not deduplicate against each other — but the dedup
//! *behaviour* (boundaries survive byte insertions) is equivalent, at several
//! times the throughput.

use std::sync::OnceLock;

use crate::chunker::{ChunkCutter, Chunker, ChunkerConfig};

/// Number of trailing bytes that influence the gear hash: the hash shifts
/// left one bit per byte, so a byte's contribution is gone after 64 steps.
pub const GEAR_WINDOW: usize = 64;

/// Seed for the deterministic gear table (the splitmix64 increment constant).
const GEAR_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The 256-entry random table mapping each byte value to a 64-bit gear.
/// Fixed seed: chunk boundaries must be identical across runs and machines
/// for deduplication to work.
fn gear_table() -> &'static [u64; 256] {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut state = GEAR_SEED;
        let mut table = [0u64; 256];
        for entry in table.iter_mut() {
            *entry = splitmix64(&mut state);
        }
        table
    })
}

/// Builds the two normalized-chunking masks for a target average size.
///
/// `avg_size = 2^bits` gives a base mask of `bits` set bits; the harder mask
/// (used below the target) has `bits + 2`, the easier mask (above) has
/// `bits - 2`. Masks occupy the *high* bits of the hash, which the gear hash
/// distributes best (low bits only see the most recent few bytes).
fn normalized_masks(avg_size: usize) -> (u64, u64) {
    let bits = avg_size.trailing_zeros() as u64;
    let hard_bits = (bits + 2).min(63);
    let easy_bits = bits.saturating_sub(2).max(1);
    let high_mask = |b: u64| ((1u64 << b) - 1) << (64 - b);
    (high_mask(hard_bits), high_mask(easy_bits))
}

/// FastCDC content-defined chunking behind the common [`Chunker`] trait.
#[derive(Debug, Clone)]
pub struct FastCdcChunker {
    config: ChunkerConfig,
}

impl FastCdcChunker {
    /// Creates a FastCDC chunker with the given size bounds.
    pub fn new(config: ChunkerConfig) -> Self {
        FastCdcChunker { config }
    }

    /// Returns the configuration in use.
    pub fn config(&self) -> ChunkerConfig {
        self.config
    }
}

impl Default for FastCdcChunker {
    fn default() -> Self {
        FastCdcChunker::new(ChunkerConfig::default())
    }
}

struct FastCdcCutter {
    gear: &'static [u64; 256],
    mask_hard: u64,
    mask_easy: u64,
    min: usize,
    avg: usize,
    max: usize,
    hash: u64,
    in_chunk: usize,
}

impl ChunkCutter for FastCdcCutter {
    fn find_boundary(&mut self, input: &[u8]) -> Option<usize> {
        let mut i = 0usize;
        // Bytes before (min - GEAR_WINDOW) cannot influence any eligible
        // boundary's hash: skip them without hashing. This is where FastCDC
        // gains over Rabin even before the cheaper per-byte update.
        let hash_start = self.min.saturating_sub(GEAR_WINDOW);
        if self.in_chunk < hash_start {
            let skip = (hash_start - self.in_chunk).min(input.len());
            self.in_chunk += skip;
            i = skip;
        }
        while i < input.len() {
            self.hash = (self.hash << 1).wrapping_add(self.gear[input[i] as usize]);
            let len = self.in_chunk + 1;
            i += 1;
            self.in_chunk = len;
            if len < self.min {
                continue;
            }
            let mask = if len < self.avg {
                self.mask_hard
            } else {
                self.mask_easy
            };
            if (self.hash & mask) == 0 || len >= self.max {
                self.reset();
                return Some(i);
            }
        }
        None
    }

    fn reset(&mut self) {
        self.hash = 0;
        self.in_chunk = 0;
    }
}

impl Chunker for FastCdcChunker {
    fn cutter(&self) -> Box<dyn ChunkCutter> {
        let (mask_hard, mask_easy) = normalized_masks(self.config.avg_size);
        Box::new(FastCdcCutter {
            gear: gear_table(),
            mask_hard,
            mask_easy,
            min: self.config.min_size,
            avg: self.config.avg_size,
            max: self.config.max_size,
            hash: 0,
            in_chunk: 0,
        })
    }

    fn name(&self) -> &'static str {
        "fastcdc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::Chunk;
    use cdstore_crypto::Fingerprint;
    use rand::{Rng, SeedableRng};

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn gear_table_is_deterministic_and_spread() {
        let table = gear_table();
        assert_eq!(table, gear_table());
        let distinct: std::collections::HashSet<u64> = table.iter().copied().collect();
        assert_eq!(distinct.len(), 256);
        // High bits (where the masks live) must vary across entries.
        let high: std::collections::HashSet<u64> = table.iter().map(|g| g >> 48).collect();
        assert!(high.len() > 200, "only {} distinct high words", high.len());
    }

    #[test]
    fn masks_bracket_the_base_probability() {
        let (hard, easy) = normalized_masks(8 * 1024);
        assert_eq!(hard.count_ones(), 15); // 13 + 2
        assert_eq!(easy.count_ones(), 11); // 13 - 2
                                           // Both masks sit in the high bits.
        assert_eq!(hard.leading_zeros(), 0);
        assert_eq!(easy.leading_zeros(), 0);
    }

    #[test]
    fn respects_size_bounds() {
        let config = ChunkerConfig::default();
        let data = random_data(1 << 20, 17);
        let chunks = FastCdcChunker::new(config).chunk(&data);
        let total: usize = chunks.iter().map(Chunk::len).sum();
        assert_eq!(total, data.len());
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len() <= config.max_size, "chunk {i} exceeds max");
            if i + 1 < chunks.len() {
                assert!(c.len() >= config.min_size, "chunk {i} below min");
            }
        }
    }

    #[test]
    fn average_size_is_near_target() {
        let config = ChunkerConfig::default();
        let data = random_data(8 << 20, 23);
        let chunks = FastCdcChunker::new(config).chunk(&data);
        let avg = data.len() as f64 / chunks.len() as f64;
        // Normalized chunking concentrates sizes around the target more
        // tightly than Rabin; accept the same broad band.
        assert!(avg > 4.0 * 1024.0 && avg < 14.0 * 1024.0, "average {avg}");
    }

    #[test]
    fn boundaries_are_content_defined() {
        let original = random_data(2 << 20, 31);
        let mut shifted = original.clone();
        shifted.splice(1000..1000, [0x55u8; 7]);

        let chunker = FastCdcChunker::default();
        let fps_a: std::collections::HashSet<Fingerprint> = chunker
            .chunk(&original)
            .iter()
            .map(|c| c.fingerprint())
            .collect();
        let chunks_b = chunker.chunk(&shifted);
        let shared = chunks_b
            .iter()
            .filter(|c| fps_a.contains(&c.fingerprint()))
            .count();
        assert!(
            shared as f64 > 0.9 * chunks_b.len() as f64,
            "only {shared}/{} chunks shared after a 7-byte insert",
            chunks_b.len()
        );
    }

    #[test]
    fn chunking_is_deterministic() {
        let data = random_data(512 * 1024, 41);
        let chunker = FastCdcChunker::default();
        assert_eq!(chunker.chunk(&data), chunker.chunk(&data));
    }

    #[test]
    fn small_inputs_form_a_single_chunk() {
        let chunker = FastCdcChunker::default();
        assert!(chunker.chunk(&[]).is_empty());
        let chunks = chunker.chunk(&[7u8; 100]);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].data.len(), 100);
    }
}
