//! Disaster recovery: tolerate a cloud outage, detect a corrupted share via
//! the CAONT-RS embedded integrity hash, and rebuild a permanently lost
//! cloud from the survivors.
//!
//! Run with `cargo run --release --example disaster_recovery`.

use cdstore_core::{CdStore, CdStoreConfig};
use cdstore_secretsharing::{CaontRs, SecretSharing, SharingError};

fn main() {
    // --- 1. Outage: restore with only k of n clouds reachable. -------------
    let store = CdStore::new(CdStoreConfig::new(4, 3).expect("valid (n, k)"));
    let payroll: Vec<u8> = (0..1_000_000)
        .map(|i| ((i / 800) as u8).wrapping_mul(7))
        .collect();
    store
        .backup(42, "/finance/payroll.tar", &payroll)
        .expect("backup succeeds");
    store.fail_cloud(3);
    let restored = store
        .restore(42, "/finance/payroll.tar")
        .expect("restore succeeds");
    assert_eq!(restored, payroll);
    println!("outage: restored payroll with cloud 3 unreachable");

    // --- 2. Corruption: the embedded hash rejects a tampered decode, and the
    //        brute-force subset decode recovers from the clean shares. ------
    let scheme = CaontRs::new(4, 3).expect("valid scheme");
    let secret = b"quarterly results: confidential".to_vec();
    let mut shares = scheme.split(&secret).expect("split succeeds");
    shares[1][0] ^= 0x80; // a bit flip inside cloud 1's share
    let tampered: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
    let direct = scheme.reconstruct(&tampered[..], secret.len());
    assert_eq!(direct, Err(SharingError::IntegrityCheckFailed));
    let recovered = scheme
        .reconstruct_bruteforce(&tampered, secret.len())
        .expect("a clean subset of k shares exists");
    assert_eq!(recovered, secret);
    println!("corruption: tampered share detected by the integrity hash; brute-force subset decode recovered the secret");

    // --- 3. Permanent loss: replace a cloud and rebuild its shares. --------
    store.recover_cloud(3);
    let repaired = store.replace_and_repair_cloud(3).expect("repair succeeds");
    println!("repair: rebuilt cloud 3 from the survivors ({repaired} file(s) repaired)");
    store.fail_cloud(0); // prove the rebuilt cloud now carries real redundancy
    let after_repair = store
        .restore(42, "/finance/payroll.tar")
        .expect("restore succeeds");
    assert_eq!(after_repair, payroll);
    println!("repair verified: restore succeeds using the rebuilt cloud while cloud 0 is offline");
}
