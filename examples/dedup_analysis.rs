//! Deduplication analysis of the synthetic FSL-like and VM-like workloads:
//! the weekly intra-user and inter-user savings of Figure 6, computed both by
//! the fast bookkeeping analyser and by replaying a scaled-down slice of the
//! workload through the real CDStore system to show the two agree.
//!
//! Run with `cargo run --release --example dedup_analysis`.

use cdstore_core::{CdStore, CdStoreConfig};
use cdstore_workloads::{weekly_dedup, FslConfig, FslWorkload, VmConfig, VmWorkload, Workload};

fn main() {
    let (n, k) = (4usize, 3usize);

    for (name, snapshots) in [
        (
            "FSL-like",
            FslWorkload::new(FslConfig {
                users: 4,
                weeks: 6,
                initial_chunks_per_user: 200,
                ..Default::default()
            })
            .snapshots(),
        ),
        (
            "VM-like",
            VmWorkload::new(VmConfig {
                users: 8,
                weeks: 6,
                chunks_per_image: 150,
                ..Default::default()
            })
            .snapshots(),
        ),
    ] {
        println!("=== {name} workload ===");
        // Fast analysis (what the Figure 6 harness uses at scale).
        let weekly = weekly_dedup(&snapshots, n, k);
        println!(
            "{:<6} {:>18} {:>18}",
            "Week", "Intra-user saving", "Inter-user saving"
        );
        for week in &weekly {
            println!(
                "{:<6} {:>17.1}% {:>17.1}%",
                week.week + 1,
                week.stats.intra_user_saving() * 100.0,
                week.stats.inter_user_saving() * 100.0
            );
        }

        // Replay the first two weeks through the real system and compare.
        let store = CdStore::new(CdStoreConfig::new(n, k).expect("valid (n, k)"));
        for week in snapshots.iter().take(2) {
            for snapshot in week {
                store
                    .backup_chunks(snapshot.user, &snapshot.pathname(), &snapshot.materialize())
                    .expect("backup succeeds");
            }
        }
        let system = store.stats().dedup;
        let analysed = weekly[1].cumulative;
        println!(
            "system replay (2 weeks): intra {:.1}% vs analysed {:.1}%, inter {:.1}% vs analysed {:.1}%",
            system.intra_user_saving() * 100.0,
            analysed.intra_user_saving() * 100.0,
            system.inter_user_saving() * 100.0,
            analysed.inter_user_saving() * 100.0
        );
        println!();
    }
}
