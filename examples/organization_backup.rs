//! An organisation's weekly backup cycle: many users, repeated weekly
//! backups with small changes, and cross-user duplicate content — the
//! scenario CDStore's two-stage deduplication is designed for.
//!
//! Run with `cargo run --release --example organization_backup`.

use cdstore_core::{CdStore, CdStoreConfig};

/// Builds user data for a given week: a shared corporate area (identical
/// across users) plus a per-user area that changes a little every week.
fn user_data(user: u64, week: usize) -> Vec<u8> {
    let shared: Vec<u8> = (0..512 * 1024)
        .map(|i| ((i / 900) as u8).wrapping_mul(13))
        .collect();
    let personal: Vec<u8> = (0..512 * 1024)
        .map(|i| {
            let region = i / 4096;
            // One region in forty changes each week.
            let version = if region % 40 == week % 40 { week } else { 0 };
            ((region as u8).wrapping_mul(31))
                .wrapping_add(user as u8)
                .wrapping_add(version as u8)
        })
        .collect();
    [shared, personal].concat()
}

fn main() {
    let store = CdStore::new(CdStoreConfig::new(4, 3).expect("valid (n, k)"));
    let users: Vec<u64> = (1..=5).collect();
    let weeks = 4usize;

    println!(
        "{:<6} {:>16} {:>18} {:>18}",
        "Week", "Logical (MB)", "Transferred (MB)", "Stored new (MB)"
    );
    for week in 0..weeks {
        let mut logical = 0u64;
        let mut transferred = 0u64;
        let mut physical = 0u64;
        for &user in &users {
            let data = user_data(user, week);
            let path = format!("/backups/user-{user}/week-{week}.tar");
            // Stream each user's archive through the bounded-memory pipeline
            // rather than handing the whole buffer to the client at once.
            let report = store
                .backup_stream(user, &path, &data[..])
                .expect("backup succeeds");
            logical += report.dedup.logical_bytes;
            transferred += report.dedup.transferred_share_bytes;
            physical += report.dedup.physical_share_bytes;
        }
        let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
        println!(
            "{:<6} {:>16.1} {:>18.1} {:>18.1}",
            week + 1,
            mb(logical),
            mb(transferred),
            mb(physical)
        );
    }

    let stats = store.stats();
    println!();
    println!(
        "after {weeks} weeks: {} files, intra-user saving {:.1}%, inter-user saving {:.1}%, dedup ratio {:.1}x",
        stats.files,
        stats.dedup.intra_user_saving() * 100.0,
        stats.dedup.inter_user_saving() * 100.0,
        stats.dedup.dedup_ratio()
    );

    // Spot-check a restore for every user from only k clouds.
    store.fail_cloud(1);
    for &user in &users {
        let path = format!("/backups/user-{user}/week-{}.tar", weeks - 1);
        let restored = store.restore(user, &path).expect("restore succeeds");
        assert_eq!(restored, user_data(user, weeks - 1));
    }
    println!("all users restored their latest backup with cloud 1 offline");
}
