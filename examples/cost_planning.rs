//! Cost planning: estimate the monthly bill of a CDStore deployment for your
//! organisation's backup volume and compare it with an AONT-RS multi-cloud
//! system and a single encrypted cloud (the §5.6 analysis).
//!
//! Run with
//! `cargo run --release --example cost_planning [weekly_tb] [dedup_ratio]`.

use cdstore_cost::{CostModel, Scenario, TB};

fn main() {
    let weekly_tb: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16.0);
    let dedup_ratio: f64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10.0);

    let model = CostModel::new();
    let scenario = Scenario::case_study(weekly_tb * TB, dedup_ratio);
    let comparison = model.evaluate(&scenario);

    println!("Scenario: {weekly_tb} TB weekly backups, {dedup_ratio}x dedup ratio, 26-week retention, (n, k) = (4, 3)");
    println!();
    println!(
        "{:<16} {:>14} {:>12} {:>14}",
        "System", "Storage $/mo", "VM $/mo", "Total $/mo"
    );
    for breakdown in [
        &comparison.single_cloud,
        &comparison.aont_rs,
        &comparison.cdstore,
    ] {
        println!(
            "{:<16} {:>14.0} {:>12.0} {:>14.0}",
            breakdown.system,
            breakdown.storage_usd,
            breakdown.vm_usd,
            breakdown.total_usd()
        );
    }
    println!();
    if let Some(instance) = &comparison.cdstore.instance {
        println!(
            "CDStore runs {} x {instance} instance(s) per cloud to hold the dedup indices.",
            comparison.cdstore.instances_per_cloud
        );
    }
    println!(
        "CDStore saves {:.1}% vs the AONT-RS multi-cloud baseline and {:.1}% vs a single cloud.",
        comparison.saving_vs_aont_rs() * 100.0,
        comparison.saving_vs_single_cloud() * 100.0
    );
}
