//! Quickstart: back up a file to four clouds, lose one cloud, restore.
//!
//! Run with `cargo run --release --example quickstart`.

use cdstore_core::{CdStore, CdStoreConfig};

fn main() {
    // A CDStore deployment over n = 4 clouds; any k = 3 suffice to restore.
    let config = CdStoreConfig::new(4, 3).expect("valid (n, k)");
    let store = CdStore::new(config);

    // A user backs up a (synthetic) 2 MB archive. `backup_stream` accepts
    // any `Read` source — a `File`, a socket, or here a slice — and never
    // materialises more than a pipeline-depth of chunks at once.
    let user = 1;
    let backup: Vec<u8> = (0..2 * 1024 * 1024)
        .map(|i| ((i / 1500) as u8).wrapping_mul(37))
        .collect();
    let report = store
        .backup_stream(user, "/home/alice/projects.tar", &backup[..])
        .expect("backup succeeds");
    println!(
        "backed up {} bytes as {} secrets; {} share bytes transferred, {} stored",
        report.dedup.logical_bytes,
        report.num_secrets,
        report.dedup.transferred_share_bytes,
        report.dedup.physical_share_bytes
    );

    // A second backup of the same content: intra-user deduplication removes
    // every share transfer.
    let report2 = store
        .backup(user, "/home/alice/projects-v2.tar", &backup)
        .expect("backup succeeds");
    println!(
        "second backup of identical content transferred {} share bytes (intra-user saving {:.1}%)",
        report2.dedup.transferred_share_bytes,
        report2.dedup.intra_user_saving() * 100.0
    );

    // One cloud fails; the data is still there. `restore_stream` writes the
    // recovered bytes straight into any `Write` sink.
    store.fail_cloud(2);
    let mut restored = Vec::new();
    let written = store
        .restore_stream(user, "/home/alice/projects.tar", &mut restored)
        .expect("restore succeeds with 3 of 4 clouds");
    assert_eq!(restored, backup);
    println!("restored {written} bytes with cloud 2 offline — contents verified");
}
