//! Offline stand-in for the subset of the `parking_lot` API this workspace
//! uses: [`Mutex`] and [`RwLock`] with non-poisoning `lock`/`read`/`write`.
//!
//! Implemented as thin wrappers over `std::sync` that recover from poisoning
//! (parking_lot has no poisoning), so the call sites keep parking_lot's
//! ergonomics: `guard = lock.lock()` with no `Result`.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guard_is_direct() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
