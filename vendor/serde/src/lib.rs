//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! Real serde is a visitor-based framework; this shim routes everything
//! through a self-describing [`Value`] tree instead, which is all the
//! workspace needs (JSON round-tripping of plain data structs in the cost
//! model). The `derive` feature re-exports `#[derive(Serialize,
//! Deserialize)]` proc-macros that implement the two traits field-by-field.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the shim's data model; JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; the shim models all numbers as `f64` like JavaScript.
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Arr(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `name` in an object, returning [`Value::Null`] when absent
    /// (so optional fields deserialize to `None`).
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        const NULL: Value = Value::Null;
        match self {
            Value::Obj(pairs) => Ok(pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the shim's value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from the shim's value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error::new(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string; only used for `&'static str` struct fields
    /// (e.g. catalogue entry names), which are few and small.
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
