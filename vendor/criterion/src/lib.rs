//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use: [`Criterion`], benchmark groups, [`Bencher`],
//! [`Throughput`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (with `harness = false`, as usual).
//!
//! Instead of criterion's statistical sampling it runs each benchmark
//! `sample_size` times, reports the median wall-clock iteration time, and
//! derives throughput from the group's [`Throughput`] setting. Good enough to
//! rank the schemes and spot order-of-magnitude regressions offline; swap the
//! real criterion back in when crates.io access is available.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How a group's per-iteration throughput is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter, like `encode/n4_k3`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just a parameter, like `CAONT-RS`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level benchmark driver; collects configuration and runs groups.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Runs one closure under timing; handed to each benchmark function.
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    median_nanos: f64,
}

impl Bencher {
    /// Times `sample_size` iterations of `routine` and records the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration.
        std_black_box(routine());
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_nanos = samples[samples.len() / 2];
    }
}

/// A group of related benchmarks sharing throughput and sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how throughput is derived from iteration time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            median_nanos: 0.0,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.median_nanos);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            median_nanos: 0.0,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.median_nanos);
        self
    }

    /// Closes the group. (The shim reports eagerly, so this is a no-op.)
    pub fn finish(self) {}

    fn report(&self, id: &str, median_nanos: f64) {
        let throughput = match self.throughput {
            Some(Throughput::Bytes(bytes)) if median_nanos > 0.0 => {
                let mib_per_s = bytes as f64 / (1024.0 * 1024.0) / (median_nanos * 1e-9);
                format!("  {mib_per_s:10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) if median_nanos > 0.0 => {
                let elems_per_s = n as f64 / (median_nanos * 1e-9);
                format!("  {elems_per_s:10.0} elem/s")
            }
            _ => String::new(),
        };
        println!(
            "{:<40} {:>12.3} us/iter{}",
            format!("{}/{}", self.name, id),
            median_nanos / 1000.0,
            throughput
        );
    }
}

/// Defines a bench group function, mirroring criterion's macro. Supports both
/// the `name = ...; config = ...; targets = ...` form and the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; the shim ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion::default().sample_size(5);
        let mut group = criterion.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.finish();
        // 5 timed + 1 warm-up iterations.
        assert_eq!(runs, 6);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("encode", "n4_k3").to_string(),
            "encode/n4_k3"
        );
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
