//! Offline stand-in for the subset of the `proptest` API this workspace's
//! property tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), `name: Type` and `name in strategy` bindings,
//! [`any`], integer-range strategies, [`collection::vec`],
//! [`array::uniform32`], [`option::of`], tuple strategies, and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! raw inputs' debug representation. Generation is deterministic — case `i`
//! of every test derives its RNG seed from `i` — so failures reproduce.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng, StandardSample, UniformInt};

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of generated values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value. (No shrinking in the shim.)
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "anything" strategy, mirroring `Arbitrary`.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: StandardSample> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing any value of `T` (uniform over the representation).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T: UniformInt> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: UniformInt> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A length distribution for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: range.start,
                hi_exclusive: range.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = range.into_inner();
            SizeRange {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy producing a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::{Strategy, TestRng};

    /// The strategy returned by [`uniform32`].
    #[derive(Debug, Clone)]
    pub struct Uniform32<S>(S);

    /// Strategy producing a `[T; 32]` with each element drawn from `element`.
    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Strategy producing `None` 25% of the time (like proptest's default
    /// weighting) and `Some(element)` otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Derives the deterministic RNG for case `case` of a property test.
pub fn case_rng(case: u32) -> TestRng {
    // Golden-ratio stride so nearby cases get unrelated streams.
    TestRng::seed_from_u64(0xC0FF_EE00_u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Defines property tests. Supports the `#![proptest_config(...)]` header,
/// multiple `fn` items per invocation, and `name: Type` / `name in strategy`
/// parameter bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); ) => {};
    (($config:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::case_rng(case);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $crate::__proptest_bind! { proptest_rng; $($params)* }
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(message)) => {
                        panic!("proptest case {case} failed: {message}");
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands parameter bindings.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
    };
    ($rng:ident; $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $name:ident: $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
}

/// Fails the current case unless `condition` holds.
#[macro_export]
macro_rules! prop_assert {
    ($condition:expr) => {
        if !$condition {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($condition),
            )));
        }
    };
    ($condition:expr, $($fmt:tt)*) => {
        if !$condition {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Skips the current case unless `condition` holds.
#[macro_export]
macro_rules! prop_assume {
    ($condition:expr) => {
        if !$condition {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = crate::case_rng(0);
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(any::<u8>(), 3..6), &mut rng);
            assert!((3..6).contains(&v.len()));
            let a = Strategy::generate(&crate::array::uniform32(any::<u8>()), &mut rng);
            assert_eq!(a.len(), 32);
            let n = Strategy::generate(&(1usize..=8), &mut rng);
            assert!((1..=8).contains(&n));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = crate::case_rng(1);
        let strategy = crate::option::of(any::<u8>());
        let values: Vec<_> = (0..200)
            .map(|_| Strategy::generate(&strategy, &mut rng))
            .collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_binds_both_forms(a: u64, data in crate::collection::vec(any::<u8>(), 0..10)) {
            prop_assume!(a != 0);
            prop_assert!(data.len() < 10);
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, 0);
        }
    }
}
