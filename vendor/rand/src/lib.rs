//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation with the same surface:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`, `fill`), [`rngs::StdRng`], and [`thread_rng`].
//!
//! `StdRng` here is a SplitMix64 generator, not ChaCha12: same-seed streams
//! are reproducible within this workspace but do not match upstream `rand`.
//! [`thread_rng`] matches upstream in the property that matters to callers
//! generating key material: it draws unpredictable OS entropy (from
//! `/dev/urandom`), never a clock-seeded deterministic stream — the
//! clock-seeded SplitMix64 is only a fallback when the device is
//! unavailable (e.g. non-unix hosts).

use std::ops::{Range, RangeInclusive};

/// Core random-number generation, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Deterministic.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value that can be produced by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Draws uniformly from `[lo, hi)`. `lo < hi` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws uniformly from `[lo, hi]`. `lo <= hi` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((u128::sample_standard(rng) % span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((u128::sample_standard(rng) % span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// A handle to the per-thread entropy source returned by
    /// [`crate::thread_rng`]. Callers (the secret-sharing schemes) draw
    /// cryptographic key material through this, so it reads OS entropy from
    /// `/dev/urandom` rather than anything derivable from the wall clock;
    /// only when the device cannot be opened or read does it degrade to the
    /// clock-seeded SplitMix64 fallback.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(());

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            ThreadRng(())
        }
    }

    enum ThreadSource {
        /// A buffered read handle on `/dev/urandom`.
        Os {
            dev: std::fs::File,
            buf: Box<[u8; 256]>,
            pos: usize,
        },
        /// Clock-seeded SplitMix64, used only when OS entropy is unavailable.
        Fallback(StdRng),
    }

    impl ThreadSource {
        fn new() -> Self {
            match std::fs::File::open("/dev/urandom") {
                Ok(dev) => ThreadSource::Os {
                    dev,
                    buf: Box::new([0u8; 256]),
                    pos: 256,
                },
                Err(_) => ThreadSource::Fallback(super::clock_seeded()),
            }
        }

        fn next_u64(&mut self) -> u64 {
            use std::io::Read;
            loop {
                match self {
                    ThreadSource::Os { dev, buf, pos } => {
                        if *pos + 8 > buf.len() {
                            if dev.read_exact(&mut buf[..]).is_err() {
                                *self = ThreadSource::Fallback(super::clock_seeded());
                                continue;
                            }
                            *pos = 0;
                        }
                        let mut word = [0u8; 8];
                        word.copy_from_slice(&buf[*pos..*pos + 8]);
                        *pos += 8;
                        return u64::from_le_bytes(word);
                    }
                    ThreadSource::Fallback(rng) => return rng.next_u64(),
                }
            }
        }
    }

    thread_local! {
        static SOURCE: std::cell::RefCell<ThreadSource> =
            std::cell::RefCell::new(ThreadSource::new());
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            SOURCE.with(|source| source.borrow_mut().next_u64())
        }
    }
}

/// Returns a handle to this thread's OS-entropy generator (`/dev/urandom`,
/// buffered per thread). Falls back to a clock-seeded generator only when
/// the device is unavailable.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// The pre-OS-entropy seeding strategy, kept solely as the [`thread_rng`]
/// fallback for hosts without `/dev/urandom`: wall clock XOR a process-wide
/// counter. Guessable by design — never used when OS entropy is available.
fn clock_seeded() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};

    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::StdRng::seed_from_u64(nanos ^ unique.rotate_left(32) ^ 0x5DEE_CE66_D013_05C9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u8 = rng.gen_range(b'a'..=b'f');
            assert!((b'a'..=b'f').contains(&w));
        }
    }

    #[test]
    fn thread_rng_draws_os_entropy_not_a_shared_clock_seed() {
        // Two handles must not replay one another's stream (the old
        // clock-seeded scheme could collide within one counter tick), and a
        // fresh handle must not be all zeros.
        let mut a = thread_rng();
        let mut b = thread_rng();
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(first, second);
        assert!(first.iter().any(|&w| w != 0));
        let mut buf = [0u8; 64];
        a.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 64]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
