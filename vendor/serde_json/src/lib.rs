//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], all routed through
//! the serde shim's [`serde::Value`] tree.
//!
//! Numbers are modelled as `f64` (printed with Rust's shortest-round-trip
//! `Display`), so serialize → deserialize round-trips are bit-exact for every
//! finite float and for integers up to 2^53.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value),
        Value::Obj(pairs) => write_seq(
            out,
            pairs.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (key, item), indent, depth| {
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth)
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_item(out, item, indent, depth + 1);
    }
    if !empty {
        newline_indent(out, indent, depth);
    }
    out.push(close);
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // JSON has no distinct integer type; print whole floats without the
        // fraction, like serde_json prints u64/i64.
        if n == n.trunc() && n.abs() < 1e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // serde_json rejects non-finite floats; the shim degrades to null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                None => return Err(Error::new("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Obj(vec![
            ("a".to_string(), Value::Num(1.5)),
            (
                "b".to_string(),
                Value::Arr(vec![Value::Null, Value::Bool(true)]),
            ),
            ("c".to_string(), Value::Str("x \"y\"\n".to_string())),
        ]);
        for json in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&json).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for n in [0.0295, 1.0e15, -2.5, 61.0, f64::MIN_POSITIVE] {
            let json = to_string(&Value::Num(n)).unwrap();
            let back: Value = from_str(&json).unwrap();
            assert_eq!(back, Value::Num(n), "{json}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&Value::Num(1024.0)).unwrap(), "1024");
        assert_eq!(to_string(&26u32).unwrap(), "26");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
