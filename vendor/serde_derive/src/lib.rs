//! `#[derive(Serialize, Deserialize)]` for the workspace's serde shim.
//!
//! Supports exactly what the workspace needs: non-generic structs with named
//! fields. The macros are written against `proc_macro` directly (no `syn` /
//! `quote` — the build container is offline), walking the token stream to
//! extract the struct name and field names, then emitting field-by-field
//! `Serialize` / `Deserialize` impls that delegate to each field type's own
//! impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct Name { field, ... }`.
struct Struct {
    name: String,
    fields: Vec<String>,
}

/// Walks the item's token stream, extracting the struct name and the named
/// fields. Panics (compile error) on enums, tuple structs, or generics.
fn parse_named_struct(input: TokenStream, trait_name: &str) -> Struct {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;
    let mut seen_struct = false;
    while let Some(token) = tokens.next() {
        match token {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                seen_struct = true;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                panic!("derive({trait_name}) shim supports structs only, found enum");
            }
            TokenTree::Ident(id) if seen_struct && name.is_none() => {
                name = Some(id.to_string());
            }
            TokenTree::Punct(p) if name.is_some() && p.as_char() == '<' => {
                panic!("derive({trait_name}) shim does not support generic structs");
            }
            TokenTree::Group(g) if name.is_some() && g.delimiter() == Delimiter::Brace => {
                return Struct {
                    name: name.unwrap(),
                    fields: parse_field_names(g.stream()),
                };
            }
            TokenTree::Group(g) if name.is_some() && g.delimiter() == Delimiter::Parenthesis => {
                panic!("derive({trait_name}) shim supports named fields only, found tuple struct");
            }
            _ => {}
        }
    }
    panic!("derive({trait_name}) shim: could not find a braced struct body");
}

/// Extracts field names from the body of a braced struct: for each
/// top-level-comma-separated entry, the identifier right before the first
/// top-level `:`. Attributes (incl. doc comments) and visibility are skipped.
fn parse_field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0usize;
    let mut in_type = false; // between the field's `:` and the next `,`
    let mut last_ident = None;
    let mut tokens = body.into_iter().peekable();
    while let Some(token) = tokens.next() {
        match token {
            TokenTree::Punct(p) => match p.as_char() {
                '#' => {
                    tokens.next();
                }
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ':' if !in_type && angle_depth == 0 => {
                    if let Some(name) = last_ident.take() {
                        fields.push(name);
                    }
                    in_type = true;
                }
                ',' if angle_depth == 0 => {
                    in_type = false;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) if !in_type => {
                let text = id.to_string();
                if text != "pub" {
                    last_ident = Some(text);
                }
            }
            _ => {}
        }
    }
    fields
}

/// Implements `serde::Serialize` by serializing each named field in order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_named_struct(input, "Serialize");
    let entries: String = parsed
        .fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Obj(vec![{entries}])\n\
             }}\n\
         }}",
        name = parsed.name,
    )
    .parse()
    .expect("serde_derive shim emitted invalid Serialize impl")
}

/// Implements `serde::Deserialize` by deserializing each named field from the
/// corresponding object entry (absent entries read as `null`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_named_struct(input, "Deserialize");
    let entries: String = parsed
        .fields
        .iter()
        .map(|f| format!("{f}: serde::Deserialize::from_value(value.field(\"{f}\")?)?,"))
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 Ok({name} {{ {entries} }})\n\
             }}\n\
         }}",
        name = parsed.name,
    )
    .parse()
    .expect("serde_derive shim emitted invalid Deserialize impl")
}
