//! Garbage-collection churn stress: 8 threads drive concurrent backup,
//! delete, and vacuum traffic against one shared CDStore deployment, then
//! the suite checks the reclamation acceptance bar — after every file is
//! deleted and `gc()` runs, the backends shed at least 90% of their physical
//! bytes — while restores of surviving files stay byte-exact throughout.
//!
//! Sizes are reduced under `debug_assertions` so plain `cargo test` stays
//! fast; CI additionally runs this suite in release mode at full size.

use std::sync::Barrier;

use cdstore_core::{CdStore, CdStoreConfig};

const THREADS: u64 = 8;
const ROUNDS: usize = if cfg!(debug_assertions) { 3 } else { 8 };
const FILE_BYTES: usize = if cfg!(debug_assertions) {
    60_000
} else {
    250_000
};

/// Position-dependent, seed-scoped data: deterministic chunk boundaries and
/// deterministic cross-seed uniqueness.
fn payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i / 512) as u8).wrapping_mul(37).wrapping_add(seed as u8))
        .collect()
}

fn new_store() -> CdStore {
    CdStore::new(CdStoreConfig::new(4, 3).unwrap())
}

fn total_backend_bytes(store: &CdStore) -> u64 {
    store.stats().backend_bytes.iter().sum()
}

/// The acceptance scenario: a churn workload (every thread repeatedly backs
/// up, verifies, and deletes files, with vacuums running mid-traffic), after
/// which deleting everything and collecting garbage must reclaim ≥ 90% of
/// the backends' physical bytes.
#[test]
fn churn_delete_all_then_gc_reclaims_at_least_90_percent() {
    let store = new_store();
    let barrier = Barrier::new(THREADS as usize);

    std::thread::scope(|scope| {
        for user in 1..=THREADS {
            let store = store.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    // Mostly private data plus a block shared by all users in
                    // the round, so inter-user dedup references cross threads.
                    let mut data = payload(FILE_BYTES, 1000 + user * 100 + round as u64);
                    data.extend_from_slice(&payload(FILE_BYTES / 4, 7 + round as u64));
                    let path = format!("/u{user}/r{round}.tar");
                    store.backup(user, &path, &data).unwrap();
                    assert_eq!(store.restore(user, &path).unwrap(), data);
                    // Churn: drop the previous round's file mid-traffic, and
                    // vacuum from half of the threads every other round.
                    if round > 0 {
                        let victim = format!("/u{user}/r{}.tar", round - 1);
                        assert!(store.delete(user, &victim).unwrap());
                    }
                    if user % 2 == 0 && round % 2 == 1 {
                        store.gc().unwrap();
                    }
                }
            });
        }
    });

    // Only each thread's final file survived the churn; all restorable.
    for user in 1..=THREADS {
        let last = ROUNDS - 1;
        let mut expected = payload(FILE_BYTES, 1000 + user * 100 + last as u64);
        expected.extend_from_slice(&payload(FILE_BYTES / 4, 7 + last as u64));
        assert_eq!(
            store
                .restore(user, &format!("/u{user}/r{last}.tar"))
                .unwrap(),
            expected
        );
    }

    store.flush().unwrap();
    let before = total_backend_bytes(&store);
    assert!(before > 0);

    // Delete everything and vacuum: the backends must shed ≥ 90%.
    for user in 1..=THREADS {
        assert!(store
            .delete(user, &format!("/u{user}/r{}.tar", ROUNDS - 1))
            .unwrap());
    }
    let report = store.gc().unwrap();
    assert!(report.reclaimed_bytes > 0);
    let after = total_backend_bytes(&store);
    assert!(
        after <= before / 10,
        "gc reclaimed too little: {before} -> {after} backend bytes"
    );
    // Nothing is left referenced anywhere.
    store.with_servers(|servers| {
        for server in servers {
            assert_eq!(server.unique_shares(), 0);
            assert_eq!(server.live_share_bytes(), 0);
        }
    });
}

/// Concurrent restores of surviving files remain byte-exact while other
/// threads churn backups, deletes, and vacuums that compact the very
/// containers the survivors live in.
#[test]
fn concurrent_restores_stay_byte_exact_under_gc_churn() {
    let store = new_store();
    let survivor = payload(FILE_BYTES, 555);
    store.backup(99, "/survivor.tar", &survivor).unwrap();
    store.flush().unwrap();

    let churners = 4u64;
    let readers = 3usize;
    let barrier = Barrier::new(churners as usize + readers + 1);
    std::thread::scope(|scope| {
        // Churners: create and destroy files round after round.
        for user in 1..=churners {
            let store = store.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    let data = payload(FILE_BYTES, user * 31 + round as u64);
                    let path = format!("/churn/u{user}/r{round}.tar");
                    store.backup(user, &path, &data).unwrap();
                    assert!(store.delete(user, &path).unwrap());
                }
            });
        }
        // Readers: hammer the survivor for byte-exactness the whole time.
        for _ in 0..readers {
            let store = store.clone();
            let barrier = &barrier;
            let survivor = &survivor;
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..ROUNDS * 2 {
                    assert_eq!(&store.restore(99, "/survivor.tar").unwrap(), survivor);
                }
            });
        }
        // Vacuum: run back-to-back passes through the churn.
        {
            let store = store.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..ROUNDS {
                    store.gc().unwrap();
                }
            });
        }
    });

    // Final vacuum: everything except the survivor is garbage.
    store.gc().unwrap();
    assert_eq!(store.restore(99, "/survivor.tar").unwrap(), survivor);
    store.with_servers(|servers| {
        for server in servers {
            assert!(server.live_share_bytes() > 0, "the survivor stays live");
        }
    });
}
