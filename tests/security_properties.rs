//! Integration tests for CDStore's security properties (§3): keyless
//! confidentiality, integrity, convergent determinism, and resistance to the
//! deduplication side-channel attacks.

use cdstore_core::{CdStore, CdStoreClient, CdStoreConfig, CdStoreServer};
use cdstore_crypto::Fingerprint;
use cdstore_secretsharing::{CaontRs, SecretSharing, SharingError};

fn sensitive_data(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i / 640) as u8).wrapping_mul(29))
        .collect()
}

#[test]
fn convergent_dispersal_is_deterministic_across_independent_clients() {
    // Two users running independent client instances produce byte-identical
    // shares for identical chunks — the property inter-user dedup relies on.
    let a = CaontRs::new(4, 3).unwrap();
    let b = CaontRs::new(4, 3).unwrap();
    for size in [100usize, 4096, 8191, 16384] {
        let secret = sensitive_data(size);
        assert_eq!(a.split(&secret).unwrap(), b.split(&secret).unwrap());
    }
}

#[test]
fn fewer_than_k_clouds_see_only_masked_data() {
    // No share (nor any k-1 shares) contains a recognisable run of the
    // original plaintext: the CAONT mask covers every data share, and parity
    // shares are combinations of masked shares.
    let scheme = CaontRs::new(4, 3).unwrap();
    let secret = vec![0x41u8; 16 * 1024]; // highly structured plaintext
    let shares = scheme.split(&secret).unwrap();
    for share in &shares {
        let longest_run = share
            .windows(32)
            .filter(|w| w.iter().all(|&b| b == 0x41))
            .count();
        assert_eq!(longest_run, 0, "a share leaked a 32-byte plaintext run");
    }
}

#[test]
fn integrity_violations_are_detected_and_survivable() {
    let scheme = CaontRs::new(4, 3).unwrap();
    let secret = sensitive_data(8192);
    let mut shares = scheme.split(&secret).unwrap();
    // An attacker (or bit rot) flips bytes in one cloud's share.
    for byte in shares[2].iter_mut().step_by(97) {
        *byte ^= 0x55;
    }
    let received: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
    // A decode that uses the corrupted share fails the embedded hash check.
    let with_corrupt = vec![
        Some(shares[0].clone()),
        Some(shares[1].clone()),
        Some(shares[2].clone()),
        None,
    ];
    assert_eq!(
        scheme.reconstruct(&with_corrupt, secret.len()),
        Err(SharingError::IntegrityCheckFailed)
    );
    // The brute-force subset decode finds the clean subset.
    assert_eq!(
        scheme
            .reconstruct_bruteforce(&received, secret.len())
            .unwrap(),
        secret
    );
}

#[test]
fn intra_user_dedup_reply_does_not_leak_other_users_data() {
    // The side-channel of Harnik et al.: an attacker asks "would this chunk
    // be deduplicated?" to learn whether someone else already stored it.
    // CDStore answers intra-user queries from the attacker's own history
    // only, so the reply is identical whether or not a victim stored it.
    let victim_servers: Vec<CdStoreServer> = (0..4).map(CdStoreServer::new).collect();
    let empty_servers: Vec<CdStoreServer> = (0..4).map(CdStoreServer::new).collect();

    let victim = CdStoreClient::new(1, 4, 3).unwrap();
    let secret_doc = sensitive_data(64 * 1024);
    victim
        .upload(&victim_servers, "/victim/salary.tar", &secret_doc)
        .unwrap();

    // The attacker guesses the victim's document and probes both worlds.
    let attacker = CdStoreClient::new(666, 4, 3).unwrap();
    let scheme = CaontRs::new(4, 3).unwrap();
    let guess_shares = scheme.split(&secret_doc[..8192]).unwrap();
    for cloud in 0..4usize {
        let fp = Fingerprint::of(&guess_shares[cloud]);
        let with_victim = victim_servers[cloud].intra_user_query(attacker.user(), &[fp]);
        let without_victim = empty_servers[cloud].intra_user_query(attacker.user(), &[fp]);
        assert_eq!(
            with_victim, without_victim,
            "the dedup reply must not depend on other users' stored data"
        );
        assert_eq!(with_victim, vec![false]);
    }
}

#[test]
fn knowing_a_fingerprint_does_not_grant_share_ownership() {
    // The proof-of-ownership attack: an attacker who learns a fingerprint
    // must not be able to fetch the share, because the server re-fingerprints
    // content itself and scopes retrieval to each user's own uploads.
    let servers: Vec<CdStoreServer> = (0..4).map(CdStoreServer::new).collect();
    let owner = CdStoreClient::new(1, 4, 3).unwrap();
    let data = sensitive_data(32 * 1024);
    owner.upload(&servers, "/owner/tax.tar", &data).unwrap();

    let scheme = CaontRs::new(4, 3).unwrap();
    let chunk_guess = scheme.split(&data[..8192]).unwrap();
    for cloud in 0..4usize {
        let fp = Fingerprint::of(&chunk_guess[cloud]);
        let result = servers[cloud].fetch_share(666, &fp);
        assert!(
            result.is_err(),
            "cloud {cloud} must refuse a non-owner fetch"
        );
    }
}

#[test]
fn another_user_cannot_restore_by_guessing_the_pathname() {
    let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
    let data = sensitive_data(100_000);
    store.backup(1, "/hr/reviews.tar", &data).unwrap();
    assert!(store.restore(2, "/hr/reviews.tar").is_err());
    assert_eq!(store.restore(1, "/hr/reviews.tar").unwrap(), data);
}

#[test]
fn salted_deployments_do_not_share_dedup_identities() {
    // An organisation-wide salt scopes convergent shares to the organisation,
    // so two organisations backing up the same public file do not produce
    // cross-organisation-identifiable shares.
    let org_a = CaontRs::with_salt(4, 3, b"org-a-secret").unwrap();
    let org_b = CaontRs::with_salt(4, 3, b"org-b-secret").unwrap();
    let common_file = sensitive_data(16 * 1024);
    assert_ne!(
        org_a.split(&common_file).unwrap(),
        org_b.split(&common_file).unwrap()
    );
    // But within one organisation the scheme is still convergent.
    assert_eq!(
        org_a.split(&common_file).unwrap(),
        org_a.split(&common_file).unwrap()
    );
}
