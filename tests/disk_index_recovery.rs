//! Recovery acceptance suite for disk-resident indexes: deployments whose
//! dedup metadata lives in on-disk LSM runs must recover byte-exact from
//! backend-only state, whether the crash fell before or after the external
//! checkpoint marker, and must interoperate with memory-mode incarnations
//! (upgrade installs the inline checkpoint into fresh runs; downgrade onto
//! an external marker is refused).

use std::sync::Arc;

use cdstore_core::{CdStore, CdStoreConfig, CdStoreError, CdStoreServer, IndexMode};
use cdstore_index::KvStoreConfig;
use cdstore_storage::{MemoryBackend, StorageBackend};

const N: usize = 4;
const K: usize = 3;
const FILE_BYTES: usize = if cfg!(debug_assertions) {
    40_000
} else {
    150_000
};

fn payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i / 512) as u8).wrapping_mul(37).wrapping_add(seed as u8))
        .collect()
}

/// A disk-index config with a small write buffer so even test-sized
/// workloads actually spill runs to the backend.
fn disk_config() -> CdStoreConfig {
    CdStoreConfig::new(N, K)
        .unwrap()
        .with_index_mode(IndexMode::Disk(KvStoreConfig {
            memtable_capacity: 64,
            max_runs: 4,
            ..KvStoreConfig::default()
        }))
}

fn memory_config() -> CdStoreConfig {
    CdStoreConfig::new(N, K).unwrap()
}

fn new_backends() -> Vec<Arc<MemoryBackend>> {
    (0..N).map(|_| Arc::new(MemoryBackend::new())).collect()
}

fn as_dyn(backends: &[Arc<MemoryBackend>]) -> Vec<Arc<dyn StorageBackend>> {
    backends
        .iter()
        .map(|b| b.clone() as Arc<dyn StorageBackend>)
        .collect()
}

/// Backs up a mixed multi-user workload and returns the surviving
/// `(user, path, data)` set after one delete per user.
fn seed_workload(store: &CdStore) -> Vec<(u64, String, Vec<u8>)> {
    let shared = payload(FILE_BYTES / 4, 7);
    let mut survivors = Vec::new();
    for user in 1..=3u64 {
        for file in 0..3u64 {
            let mut data = payload(FILE_BYTES, 100 + user * 10 + file);
            data.extend_from_slice(&shared);
            let path = format!("/u{user}/f{file}.tar");
            store.backup(user, &path, &data).unwrap();
            survivors.push((user, path, data));
        }
        assert!(store.delete(user, &format!("/u{user}/f2.tar")).unwrap());
        survivors.retain(|(u, p, _)| !(*u == user && p == &format!("/u{user}/f2.tar")));
    }
    survivors
}

fn assert_restores(store: &CdStore, survivors: &[(u64, String, Vec<u8>)]) {
    for (user, path, data) in survivors {
        assert_eq!(&store.restore(*user, path).unwrap(), data, "{path}");
    }
    assert!(store.restore(1, "/u1/f2.tar").is_err(), "stays deleted");
}

fn checkpoint_all(store: &CdStore) {
    store.with_servers(|servers| {
        for server in servers {
            server.checkpoint().unwrap();
        }
    });
}

#[test]
fn disk_mode_deployment_recovers_byte_exact() {
    let backends = new_backends();
    let store = CdStore::with_backends(disk_config(), as_dyn(&backends)).unwrap();
    store.with_servers(|servers| {
        for server in servers {
            assert!(matches!(server.index_mode(), IndexMode::Disk(_)));
            assert!(server.index_cache_stats().is_some());
        }
    });

    let survivors = seed_workload(&store);
    store.flush().unwrap();
    checkpoint_all(&store);
    let unique_before = store.with_servers(|servers| {
        servers
            .iter()
            .map(|s| s.unique_shares())
            .collect::<Vec<_>>()
    });
    drop(store);

    let (revived, reports) = CdStore::open(disk_config(), as_dyn(&backends)).unwrap();
    for report in &reports {
        assert!(!report.pruned_anything(), "flushed state loses nothing");
        assert!(!report.torn_tail);
    }
    assert_restores(&revived, &survivors);
    revived.with_servers(|servers| {
        for (i, server) in servers.iter().enumerate() {
            assert!(matches!(server.index_mode(), IndexMode::Disk(_)));
            assert_eq!(server.unique_shares(), unique_before[i], "server {i}");
        }
    });
}

#[test]
fn auto_detection_reopens_disk_indexes_under_memory_config() {
    let backends = new_backends();
    let store = CdStore::with_backends(disk_config(), as_dyn(&backends)).unwrap();
    let survivors = seed_workload(&store);
    store.flush().unwrap();
    checkpoint_all(&store);
    drop(store);

    // A plain (memory-default) config must still find the run/manifest
    // objects on the backend and come back disk-resident.
    let (revived, _) = CdStore::open(memory_config(), as_dyn(&backends)).unwrap();
    revived.with_servers(|servers| {
        for server in servers {
            assert!(matches!(server.index_mode(), IndexMode::Disk(_)));
        }
    });
    assert_restores(&revived, &survivors);
}

#[test]
fn journal_suffix_replays_over_checkpointed_runs() {
    let backends = new_backends();
    let store = CdStore::with_backends(disk_config(), as_dyn(&backends)).unwrap();

    // Phase 1 is checkpointed (external marker + flushed runs)...
    let mut survivors = seed_workload(&store);
    store.flush().unwrap();
    checkpoint_all(&store);

    // ...phase 2 lands only in sealed containers + the journal suffix, and
    // overwrites/deletes phase-1 state so replay must reconcile the runs.
    for user in 1..=3u64 {
        let data = payload(FILE_BYTES, 900 + user);
        let path = format!("/u{user}/f0.tar");
        store.backup(user, &path, &data).unwrap();
        survivors.retain(|(u, p, _)| !(*u == user && p == &path));
        survivors.push((user, path, data));
        assert!(store.delete(user, &format!("/u{user}/f1.tar")).unwrap());
        survivors.retain(|(u, p, _)| !(*u == user && p == &format!("/u{user}/f1.tar")));
    }
    store.flush().unwrap();
    drop(store);

    let (revived, reports) = CdStore::open(disk_config(), as_dyn(&backends)).unwrap();
    for report in &reports {
        assert!(!report.pruned_anything(), "flushed state loses nothing");
    }
    assert_restores(&revived, &survivors);
    for user in 1..=3u64 {
        assert!(revived.restore(user, &format!("/u{user}/f1.tar")).is_err());
    }
}

#[test]
fn memory_deployment_upgrades_to_disk_and_back_detects() {
    let backends = new_backends();
    let store = CdStore::with_backends(memory_config(), as_dyn(&backends)).unwrap();
    let survivors = seed_workload(&store);
    store.flush().unwrap();
    checkpoint_all(&store);
    drop(store);

    // Upgrade: reopening in disk mode installs the inline checkpoint bodies
    // into fresh runs, then the next checkpoint commits the external marker.
    let (upgraded, _) = CdStore::open(disk_config(), as_dyn(&backends)).unwrap();
    assert_restores(&upgraded, &survivors);
    upgraded.flush().unwrap();
    checkpoint_all(&upgraded);
    drop(upgraded);

    // From here auto-detection takes over even with a memory-default config.
    let (revived, _) = CdStore::open(memory_config(), as_dyn(&backends)).unwrap();
    revived.with_servers(|servers| {
        for server in servers {
            assert!(matches!(server.index_mode(), IndexMode::Disk(_)));
        }
    });
    assert_restores(&revived, &survivors);
}

#[test]
fn explicit_memory_reopen_of_external_checkpoint_is_refused() {
    let backends = new_backends();
    let store = CdStore::with_backends(disk_config(), as_dyn(&backends)).unwrap();
    seed_workload(&store);
    store.flush().unwrap();
    checkpoint_all(&store);
    drop(store);

    // The external marker carries no index bodies, so forcing memory mode
    // (bypassing auto-detection) must fail loudly instead of opening empty.
    let err = CdStoreServer::open_with_index(
        0,
        backends[0].clone() as Arc<dyn StorageBackend>,
        IndexMode::Memory,
    )
    .err()
    .expect("memory-mode open over an external checkpoint must fail");
    assert!(
        matches!(err, CdStoreError::InconsistentMetadata(_)),
        "{err}"
    );
}

#[test]
fn server_restarts_mid_workload_keep_disk_indexes() {
    let backends = new_backends();
    let store = CdStore::with_backends(disk_config(), as_dyn(&backends)).unwrap();
    let mut survivors = seed_workload(&store);
    store.flush().unwrap();

    for i in 0..N {
        let report = store.restart_server(i).unwrap();
        assert!(
            !report.pruned_anything(),
            "server {i} restart loses nothing"
        );
        // The deployment keeps absorbing traffic between restarts.
        let data = payload(FILE_BYTES / 2, 1000 + i as u64);
        let path = format!("/u9/after-restart-{i}.tar");
        store.backup(9, &path, &data).unwrap();
        survivors.push((9, path, data));
        store.flush().unwrap();
    }
    store.with_servers(|servers| {
        for server in servers {
            assert!(matches!(server.index_mode(), IndexMode::Disk(_)));
        }
    });
    assert_restores(&store, &survivors);
}
