//! Cross-crate consistency: replaying a synthetic workload through the real
//! CDStore system must produce the same deduplication accounting as the fast
//! analytical bookkeeping used by the Figure 6 harness, and all replayed
//! backups must remain restorable.

use cdstore_core::{CdStore, CdStoreConfig};
use cdstore_workloads::{weekly_dedup, FslConfig, FslWorkload, VmConfig, VmWorkload, Workload};

fn replay_and_compare(
    name: &str,
    snapshots: &[Vec<cdstore_workloads::Snapshot>],
    n: usize,
    k: usize,
) {
    let store = CdStore::new(CdStoreConfig::new(n, k).unwrap());
    for week in snapshots {
        for snapshot in week {
            store
                .backup_chunks(snapshot.user, &snapshot.pathname(), &snapshot.materialize())
                .unwrap_or_else(|e| panic!("{name}: backup failed: {e}"));
        }
    }
    let system = store.stats().dedup;
    let analysed = weekly_dedup(snapshots, n, k)
        .last()
        .expect("non-empty workload")
        .cumulative;

    assert_eq!(
        system.logical_bytes, analysed.logical_bytes,
        "{name}: logical bytes"
    );
    assert_eq!(
        system.logical_share_bytes, analysed.logical_share_bytes,
        "{name}: logical share bytes"
    );
    assert_eq!(
        system.transferred_share_bytes, analysed.transferred_share_bytes,
        "{name}: transferred share bytes"
    );
    assert_eq!(
        system.physical_share_bytes, analysed.physical_share_bytes,
        "{name}: physical share bytes"
    );

    // Every user's latest backup restores to exactly the materialised chunks.
    let last_week = snapshots.last().expect("non-empty workload");
    for snapshot in last_week.iter().take(3) {
        let expected: Vec<u8> = snapshot.materialize().concat();
        let restored = store
            .restore(snapshot.user, &snapshot.pathname())
            .unwrap_or_else(|e| panic!("{name}: restore failed: {e}"));
        assert_eq!(restored, expected, "{name}: restored content mismatch");
    }
}

#[test]
fn fsl_like_replay_matches_the_analytical_model() {
    let workload = FslWorkload::new(FslConfig {
        users: 3,
        weeks: 3,
        initial_chunks_per_user: 60,
        ..Default::default()
    });
    replay_and_compare("FSL", &workload.snapshots(), 4, 3);
}

#[test]
fn vm_like_replay_matches_the_analytical_model() {
    let workload = VmWorkload::new(VmConfig {
        users: 5,
        weeks: 3,
        chunks_per_image: 50,
        ..Default::default()
    });
    replay_and_compare("VM", &workload.snapshots(), 4, 3);
}

#[test]
fn replay_works_for_other_n_k_configurations() {
    let workload = VmWorkload::new(VmConfig {
        users: 3,
        weeks: 2,
        chunks_per_image: 40,
        ..Default::default()
    });
    replay_and_compare("VM (6,4)", &workload.snapshots(), 6, 4);
}
