//! Concurrency stress suite: many real OS threads driving backup, restore,
//! and delete against one shared CDStore deployment (§5.4's multi-client
//! workload, as correctness rather than speed).
//!
//! The invariants checked here are the ones the sharded-server refactor must
//! preserve:
//!
//! * every restore is byte-exact, no matter how many writers run;
//! * a share stored by racing clients lands in a container exactly once
//!   (inter-user deduplication under contention);
//! * the per-server traffic counters reconcile with the sum of the
//!   per-client [`UploadReport`]s — nothing is double-counted or lost.
//!
//! Sizes are reduced under `debug_assertions` so plain `cargo test` stays
//! fast; CI additionally runs this suite in release mode at full size.

use std::sync::{Barrier, Mutex};

use cdstore_core::{CdStore, CdStoreConfig, UploadReport};

const USERS: u64 = 4;
const THREADS_PER_USER: u64 = 2;
const THREADS: u64 = USERS * THREADS_PER_USER; // 8 concurrent client threads

const ROUNDS: usize = if cfg!(debug_assertions) { 2 } else { 5 };
const FILE_BYTES: usize = if cfg!(debug_assertions) {
    50_000
} else {
    200_000
};

/// Position-dependent, seed-scoped data: deterministic chunk boundaries and
/// deterministic cross-seed uniqueness.
fn payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i / 512) as u8).wrapping_mul(37).wrapping_add(seed as u8))
        .collect()
}

fn new_store() -> CdStore {
    CdStore::new(CdStoreConfig::new(4, 3).unwrap())
}

fn total_physical(store: &CdStore) -> u64 {
    store
        .stats()
        .servers
        .iter()
        .map(|s| s.physical_share_bytes)
        .sum()
}

#[test]
fn racing_duplicate_backups_store_each_share_exactly_once() {
    let shared_data = payload(FILE_BYTES, 250);

    // Reference: the same content uploaded once by a single client.
    let reference = new_store();
    reference.backup(1, "/ref", &shared_data).unwrap();
    let reference_physical = total_physical(&reference);
    let reference_unique: Vec<usize> =
        reference.with_servers(|servers| servers.iter().map(|s| s.unique_shares()).collect());
    assert!(reference_physical > 0);

    // Race: 8 client threads push the identical content simultaneously.
    let store = new_store();
    let barrier = Barrier::new(THREADS as usize);
    std::thread::scope(|scope| {
        for user in 1..=THREADS {
            let store = store.clone();
            let barrier = &barrier;
            let shared_data = &shared_data;
            scope.spawn(move || {
                barrier.wait();
                store
                    .backup(user, &format!("/u{user}/same.tar"), shared_data)
                    .unwrap();
            });
        }
    });

    // Physical storage is identical to the single-client reference: the
    // racing duplicates never reached a container.
    assert_eq!(total_physical(&store), reference_physical);
    store.with_servers(|servers| {
        for (server, expected_unique) in servers.iter().zip(&reference_unique) {
            assert_eq!(server.unique_shares(), *expected_unique);
        }
    });
    let stats = store.stats();
    let duplicates: u64 = stats.servers.iter().map(|s| s.inter_user_duplicates).sum();
    let received: u64 = stats.servers.iter().map(|s| s.shares_received).sum();
    assert_eq!(
        duplicates,
        received - reference_unique.iter().sum::<usize>() as u64,
        "all but the first copy of each share must be inter-user duplicates"
    );
    // Every user still restores their own byte-exact copy.
    for user in 1..=THREADS {
        assert_eq!(
            store.restore(user, &format!("/u{user}/same.tar")).unwrap(),
            shared_data
        );
    }
}

#[test]
fn interleaved_backup_restore_delete_reconciles_stats() {
    let store = new_store();
    let reports: Mutex<Vec<UploadReport>> = Mutex::new(Vec::new());
    let barrier = Barrier::new(THREADS as usize);

    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            let store = store.clone();
            let reports = &reports;
            let barrier = &barrier;
            scope.spawn(move || {
                let user = 1 + tid / THREADS_PER_USER; // 4 users, 2 threads each
                barrier.wait();
                for round in 0..ROUNDS {
                    // Disjoint data, unique to this thread and round.
                    let private = payload(FILE_BYTES, 1000 + tid * 100 + round as u64);
                    let private_path = format!("/u{user}/t{tid}/r{round}.tar");
                    let r = store.backup(user, &private_path, &private).unwrap();
                    reports.lock().unwrap().push(r);
                    assert_eq!(store.restore(user, &private_path).unwrap(), private);

                    // Shared data: identical bytes uploaded by all 8 threads
                    // in the same round, exercising both dedup stages.
                    let shared = payload(FILE_BYTES, 7 + round as u64);
                    let shared_path = format!("/u{user}/t{tid}/shared-r{round}.tar");
                    let r = store.backup(user, &shared_path, &shared).unwrap();
                    reports.lock().unwrap().push(r);
                    assert_eq!(store.restore(user, &shared_path).unwrap(), shared);

                    // Delete the previous round's private file mid-traffic.
                    if round > 0 {
                        let victim = format!("/u{user}/t{tid}/r{}.tar", round - 1);
                        assert!(store.delete(user, &victim).unwrap());
                        assert!(store.restore(user, &victim).is_err());
                    }
                }
            });
        }
    });

    // Per-server reconciliation: the bytes every server says it received /
    // newly stored equal the sums the clients reported sending / storing.
    let reports = reports.into_inner().unwrap();
    assert_eq!(reports.len(), THREADS as usize * ROUNDS * 2);
    let stats = store.stats();
    let n = store.config().n;
    for cloud in 0..n {
        let client_transferred: u64 = reports.iter().map(|r| r.transferred_per_cloud[cloud]).sum();
        let client_physical: u64 = reports.iter().map(|r| r.physical_per_cloud[cloud]).sum();
        let server = &stats.servers[cloud];
        assert_eq!(
            server.received_share_bytes, client_transferred,
            "cloud {cloud}: received bytes must match the clients' transfers"
        );
        assert_eq!(
            server.physical_share_bytes, client_physical,
            "cloud {cloud}: physical bytes must match the clients' new-byte reports"
        );
    }
    // Aggregated dedup counters line up with the same sums.
    let all_transferred: u64 = reports
        .iter()
        .map(|r| r.dedup.transferred_share_bytes)
        .sum();
    assert_eq!(stats.dedup.transferred_share_bytes, all_transferred);

    // Every file that was not deleted is still restorable, byte for byte.
    for tid in 0..THREADS {
        let user = 1 + tid / THREADS_PER_USER;
        let last = ROUNDS - 1;
        assert_eq!(
            store
                .restore(user, &format!("/u{user}/t{tid}/r{last}.tar"))
                .unwrap(),
            payload(FILE_BYTES, 1000 + tid * 100 + last as u64)
        );
        for round in 0..ROUNDS {
            assert_eq!(
                store
                    .restore(user, &format!("/u{user}/t{tid}/shared-r{round}.tar"))
                    .unwrap(),
                payload(FILE_BYTES, 7 + round as u64)
            );
        }
    }
    // Catalogue: per thread, ROUNDS shared files plus one surviving private
    // file (the rest were deleted).
    assert_eq!(stats.files, THREADS as usize * (ROUNDS + 1));
}

#[test]
fn racing_writes_to_the_same_file_leave_a_consistent_version() {
    // Two threads of the same user write *different* content to the same
    // pathname concurrently. The per-cloud recipes must never end up mixed
    // between the two uploads: the restore must return one payload intact.
    let store = new_store();
    let payload_a = payload(FILE_BYTES, 111);
    let payload_b = payload(FILE_BYTES, 222);
    for round in 0..ROUNDS {
        let readers = if round == 0 { 0 } else { 2 };
        let barrier = Barrier::new(2 + readers);
        std::thread::scope(|scope| {
            for data in [&payload_a, &payload_b] {
                let store = store.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    store.backup(1, "/contested.tar", data).unwrap();
                });
            }
            // From round 1 the file exists: concurrent restores must never
            // observe a half-committed rewrite (mixed per-cloud recipes).
            for _ in 0..readers {
                let store = store.clone();
                let barrier = &barrier;
                let (payload_a, payload_b) = (&payload_a, &payload_b);
                scope.spawn(move || {
                    barrier.wait();
                    let restored = store.restore(1, "/contested.tar").unwrap();
                    assert!(
                        &restored == payload_a || &restored == payload_b,
                        "mid-race restore returned a mix of two uploads"
                    );
                });
            }
        });
        let restored = store.restore(1, "/contested.tar").unwrap();
        assert!(
            restored == payload_a || restored == payload_b,
            "round {round}: restore returned a mix of two uploads"
        );
    }
    assert_eq!(store.stats().files, 1);
}

#[test]
fn concurrent_readers_and_writers_do_not_disturb_each_other() {
    let store = new_store();
    // Seed a stable file set first.
    let stable: Vec<(u64, String, Vec<u8>)> = (1..=USERS)
        .map(|user| {
            let data = payload(FILE_BYTES, 40 + user);
            let path = format!("/u{user}/stable.tar");
            store.backup(user, &path, &data).unwrap();
            (user, path, data)
        })
        .collect();
    store.flush().unwrap();

    let barrier = Barrier::new(THREADS as usize);
    std::thread::scope(|scope| {
        // Half the threads hammer restores of the stable files...
        for tid in 0..THREADS / 2 {
            let store = store.clone();
            let barrier = &barrier;
            let stable = &stable;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS * 2 {
                    let (user, path, data) = &stable[((tid as usize) + round) % stable.len()];
                    assert_eq!(&store.restore(*user, path).unwrap(), data);
                }
            });
        }
        // ...while the other half writes and deletes fresh files.
        for tid in 0..THREADS / 2 {
            let store = store.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                let user = 1 + tid % USERS;
                barrier.wait();
                for round in 0..ROUNDS {
                    let data = payload(FILE_BYTES, 5000 + tid * 10 + round as u64);
                    let path = format!("/u{user}/w{tid}-r{round}.tar");
                    store.backup(user, &path, &data).unwrap();
                    assert_eq!(store.restore(user, &path).unwrap(), data);
                    assert!(store.delete(user, &path).unwrap());
                }
            });
        }
    });

    // The stable files were never disturbed; only they remain catalogued.
    for (user, path, data) in &stable {
        assert_eq!(&store.restore(*user, path).unwrap(), data);
    }
    assert_eq!(store.stats().files, stable.len());
}
