//! Crash-recovery acceptance suite: servers rebuilt from backend-only state
//! (checkpoint + journal + sealed containers) must restore every previously
//! backed-up file byte-identically, keep their deduplication state intact,
//! and keep delete + gc working — across full-deployment crashes, torn
//! journal tails, and restarts injected into concurrent churn traffic.
//!
//! Sizes are reduced under `debug_assertions` so plain `cargo test` stays
//! fast; CI additionally runs this suite in release mode at full size.

use std::sync::{Arc, Barrier};

use cdstore_core::metadata::{FileRecipe, RecipeEntry, ShareMetadata};
use cdstore_core::{CdStore, CdStoreConfig, CdStoreServer};
use cdstore_crypto::Fingerprint;
use cdstore_storage::journal::{decode_records, WAL_PREFIX};
use cdstore_storage::{MemoryBackend, StorageBackend};
use proptest::prelude::*;

const N: usize = 4;
const K: usize = 3;
const FILE_BYTES: usize = if cfg!(debug_assertions) {
    60_000
} else {
    250_000
};
const CHURN_ROUNDS: usize = if cfg!(debug_assertions) { 3 } else { 8 };

/// Position-dependent, seed-scoped data: deterministic chunk boundaries and
/// deterministic cross-seed uniqueness.
fn payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i / 512) as u8).wrapping_mul(37).wrapping_add(seed as u8))
        .collect()
}

fn config() -> CdStoreConfig {
    CdStoreConfig::new(N, K).unwrap()
}

fn new_backends() -> Vec<Arc<MemoryBackend>> {
    (0..N).map(|_| Arc::new(MemoryBackend::new())).collect()
}

fn as_dyn(backends: &[Arc<MemoryBackend>]) -> Vec<Arc<dyn StorageBackend>> {
    backends
        .iter()
        .map(|b| b.clone() as Arc<dyn StorageBackend>)
        .collect()
}

/// The acceptance scenario: a mixed workload (shared blocks across users,
/// re-uploaded versions, pre-crash deletes), every server dropped, the
/// deployment reopened from the backends alone.
#[test]
fn mixed_workload_survives_dropping_every_server() {
    let backends = new_backends();
    let store = CdStore::with_backends(config(), as_dyn(&backends)).unwrap();

    // A block every user embeds, so recovered refcounts cross users.
    let shared = payload(FILE_BYTES / 4, 7);
    let mut survivors: Vec<(u64, String, Vec<u8>)> = Vec::new();
    for user in 1..=4u64 {
        for file in 0..3u64 {
            let mut data = payload(FILE_BYTES, 100 + user * 10 + file);
            data.extend_from_slice(&shared);
            let path = format!("/u{user}/f{file}.tar");
            store.backup(user, &path, &data).unwrap();
            survivors.push((user, path, data));
        }
        // One file is re-uploaded with fresh content (recovery must serve
        // the newest version) and one is deleted before the crash.
        let mut newer = payload(FILE_BYTES, 900 + user);
        newer.extend_from_slice(&shared);
        let path = format!("/u{user}/f0.tar");
        store.backup(user, &path, &newer).unwrap();
        survivors.retain(|(u, p, _)| !(*u == user && p == &path));
        survivors.push((user, path, newer));
        assert!(store.delete(user, &format!("/u{user}/f2.tar")).unwrap());
        survivors.retain(|(u, p, _)| !(*u == user && p == &format!("/u{user}/f2.tar")));
    }
    store.flush().unwrap();

    let (unique_before, live_before) = store.with_servers(|servers| {
        (
            servers
                .iter()
                .map(|s| s.unique_shares())
                .collect::<Vec<_>>(),
            servers
                .iter()
                .map(|s| s.live_share_bytes())
                .collect::<Vec<_>>(),
        )
    });
    drop(store);

    // Every server is rebuilt from backend-only state.
    let (revived, reports) = CdStore::open(config(), as_dyn(&backends)).unwrap();
    for report in &reports {
        assert!(
            !report.pruned_anything(),
            "flushed state loses nothing: {report:?}"
        );
        assert!(report.containers_scanned > 0);
        assert!(!report.torn_tail);
    }

    // Byte-exact restores for every surviving file...
    for (user, path, data) in &survivors {
        assert_eq!(&revived.restore(*user, path).unwrap(), data, "{path}");
    }
    // ...deleted files stay deleted...
    assert!(revived.restore(1, "/u1/f2.tar").is_err());
    // ...and the dedup counters came back intact.
    revived.with_servers(|servers| {
        for (i, server) in servers.iter().enumerate() {
            assert_eq!(server.unique_shares(), unique_before[i], "server {i}");
            assert_eq!(server.live_share_bytes(), live_before[i], "server {i}");
        }
    });

    // Delete + gc keep working after recovery: dropping everything empties
    // the backends (shared blocks included — refcounts recovered exactly).
    for (user, path, _) in &survivors {
        assert!(revived.delete(*user, path).unwrap(), "{path}");
    }
    revived.gc().unwrap();
    assert_eq!(
        revived.stats().backend_bytes.iter().sum::<u64>(),
        0,
        "recovered refcounts must reclaim to zero"
    );

    // And the recovered deployment accepts fresh traffic.
    let fresh = payload(FILE_BYTES, 31);
    revived.backup(9, "/fresh.tar", &fresh).unwrap();
    assert_eq!(revived.restore(9, "/fresh.tar").unwrap(), fresh);
}

/// Recovery cost is bounded by the checkpoint cadence: `open` itself commits
/// a checkpoint of the recovered state, so an immediate reopen replays zero
/// records, and only post-checkpoint traffic ever needs replaying.
#[test]
fn recovery_after_a_checkpoint_replays_only_the_journal_suffix() {
    let backends = new_backends();
    let store = CdStore::with_backends(config(), as_dyn(&backends)).unwrap();
    let mut fleet = Vec::new();
    for file in 0..6u64 {
        let data = payload(FILE_BYTES, 40 + file);
        let path = format!("/pre/{file}.tar");
        store.backup(1, &path, &data).unwrap();
        fleet.push((path, data));
    }
    store.flush().unwrap();
    drop(store);

    // First recovery replays the whole journal (no checkpoint existed yet).
    let (revived, first) = CdStore::open(config(), as_dyn(&backends)).unwrap();
    let full_replay = first.iter().map(|r| r.records_replayed).sum::<usize>();
    assert!(full_replay > 0);
    assert!(first.iter().all(|r| !r.used_checkpoint));
    drop(revived);

    // `open` checkpointed the recovered state, so a reopen replays nothing.
    let (revived, second) = CdStore::open(config(), as_dyn(&backends)).unwrap();
    for report in &second {
        assert!(report.used_checkpoint);
        assert_eq!(report.records_replayed, 0, "{report:?}");
    }

    // Traffic after the checkpoint is the only thing the next recovery
    // replays — a small suffix, not the whole history.
    let extra = payload(FILE_BYTES, 77);
    revived.backup(1, "/post.tar", &extra).unwrap();
    revived.flush().unwrap();
    drop(revived);
    let (revived, third) = CdStore::open(config(), as_dyn(&backends)).unwrap();
    let suffix_replay = third.iter().map(|r| r.records_replayed).sum::<usize>();
    assert!(suffix_replay > 0);
    assert!(
        suffix_replay * 3 < full_replay,
        "suffix replay ({suffix_replay} records) should be a fraction of a \
         full replay ({full_replay} records)"
    );
    for (path, data) in &fleet {
        assert_eq!(&revived.restore(1, path).unwrap(), data);
    }
    assert_eq!(revived.restore(1, "/post.tar").unwrap(), extra);
}

/// Durability end-to-end through the fsync'ing directory backend: state
/// written by one deployment is recovered by a second one reading the same
/// directories, byte-exact.
#[test]
fn dir_backend_state_survives_a_cold_reopen() {
    let root = std::env::temp_dir().join(format!("cdstore-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let backends: Vec<Arc<dyn StorageBackend>> = (0..N)
        .map(|i| {
            Arc::new(cdstore_storage::DirBackend::new(root.join(format!("cloud{i}"))).unwrap())
                as Arc<dyn StorageBackend>
        })
        .collect();
    let store = CdStore::with_backends(config(), backends.clone()).unwrap();
    let data = payload(FILE_BYTES, 3);
    store.backup(1, "/disk.tar", &data).unwrap();
    store.flush().unwrap();
    drop(store);

    let reopened: Vec<Arc<dyn StorageBackend>> = (0..N)
        .map(|i| {
            Arc::new(cdstore_storage::DirBackend::new(root.join(format!("cloud{i}"))).unwrap())
                as Arc<dyn StorageBackend>
        })
        .collect();
    let (revived, reports) = CdStore::open(config(), reopened).unwrap();
    assert!(reports.iter().all(|r| !r.pruned_anything()));
    assert_eq!(revived.restore(1, "/disk.tar").unwrap(), data);
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// Torn-write tolerance: replaying any byte-prefix of a valid journal.
// ---------------------------------------------------------------------------

/// Drives the server-side upload protocol directly (intra-user query, store,
/// put_file), as a client would per cloud.
fn server_backup(server: &CdStoreServer, user: u64, path: &[u8], datas: &[Vec<u8>]) {
    let shares: Vec<(ShareMetadata, Vec<u8>)> = datas
        .iter()
        .map(|d| {
            (
                ShareMetadata {
                    fingerprint: Fingerprint::of(d),
                    share_size: d.len() as u32,
                    secret_seq: 0,
                    secret_size: d.len() as u32 * 3,
                },
                d.clone(),
            )
        })
        .collect();
    let fps: Vec<Fingerprint> = shares.iter().map(|(m, _)| m.fingerprint).collect();
    let already = server.intra_user_query(user, &fps);
    let to_upload: Vec<(ShareMetadata, Vec<u8>)> = shares
        .iter()
        .cloned()
        .zip(already)
        .filter_map(|(s, dup)| (!dup).then_some(s))
        .collect();
    let uploaded: Vec<Fingerprint> = to_upload.iter().map(|(m, _)| m.fingerprint).collect();
    server.store_shares(user, &to_upload).unwrap();
    let recipe = FileRecipe {
        file_size: datas.iter().map(|d| d.len() as u64).sum(),
        entries: shares
            .iter()
            .map(|(m, _)| RecipeEntry {
                share_fingerprint: m.fingerprint,
                secret_size: m.secret_size,
            })
            .collect(),
    };
    server.put_file(user, path, &recipe, &uploaded).unwrap();
}

/// One surviving file of the torn-prefix workload: owner, server-side
/// pathname, and the exact share payloads its recipe references.
type ManifestEntry = (u64, Vec<u8>, Vec<Vec<u8>>);

/// Builds a server with a mixed (stores, dedup, deletes) history, entirely
/// flushed, and returns its backend plus the manifest of surviving files.
fn journaled_workload() -> (Arc<MemoryBackend>, Vec<ManifestEntry>) {
    let backend = Arc::new(MemoryBackend::new());
    let server = CdStoreServer::with_backend(0, backend.clone());
    let mut manifest = Vec::new();
    for user in 1..=3u64 {
        for file in 0..4u64 {
            let datas: Vec<Vec<u8>> = (0..5u64)
                .map(|i| {
                    if i == 0 {
                        b"shared-across-everyone".to_vec()
                    } else {
                        format!("u{user} f{file} share {i}").into_bytes()
                    }
                })
                .collect();
            let path = format!("/u{user}/f{file}").into_bytes();
            server_backup(&server, user, &path, &datas);
            manifest.push((user, path, datas));
        }
        // Churn: one delete and one re-upload per user.
        let victim = format!("/u{user}/f3").into_bytes();
        assert!(server.delete_file(user, &victim).unwrap());
        manifest.retain(|(u, p, _)| !(*u == user && p == &victim));
        let path = format!("/u{user}/f0").into_bytes();
        let newer = vec![format!("u{user} rewritten").into_bytes()];
        server_backup(&server, user, &path, &newer);
        manifest.retain(|(u, p, _)| !(*u == user && p == &path));
        manifest.push((user, path, newer));
    }
    server.flush().unwrap();
    (backend, manifest)
}

/// Copies every object, truncating the single WAL segment to `cut` bytes.
fn truncated_copy(backend: &MemoryBackend, wal_key: &str, cut: usize) -> Arc<MemoryBackend> {
    let copy = Arc::new(MemoryBackend::new());
    for key in backend.list().unwrap() {
        let mut bytes = backend.get(&key).unwrap();
        if key == wal_key {
            bytes.truncate(cut);
            if bytes.is_empty() {
                continue;
            }
        }
        copy.put(&key, &bytes).unwrap();
    }
    copy
}

/// The consistency invariant a recovered server must satisfy for *any*
/// journal prefix: recovery never panics, the torn tail is detected exactly
/// when the cut falls inside a frame, and every file the recovered index
/// still knows restores byte-exactly (no dangling references).
fn assert_consistent_after_cut(
    backend: &MemoryBackend,
    wal_key: &str,
    wal: &[u8],
    cut: usize,
    manifest: &[ManifestEntry],
) {
    let copy = truncated_copy(backend, wal_key, cut);
    let (expected_records, expected_torn) = decode_records(&wal[..cut]);
    let (server, report) = CdStoreServer::open(0, copy).unwrap();
    assert_eq!(report.torn_tail, expected_torn, "cut {cut}");
    assert_eq!(report.records_replayed, expected_records.len(), "cut {cut}");
    for (user, path, datas) in manifest {
        match server.get_recipe(*user, path) {
            Ok(recipe) => {
                // The file survived the prefix: every reference must resolve
                // to the exact bytes (though possibly an *older version's*
                // recipe if the cut predates a re-upload — hence we check
                // resolvability, and exact bytes only when the recipe
                // matches the final manifest).
                let fetched: Vec<Vec<u8>> = recipe
                    .entries
                    .iter()
                    .map(|entry| {
                        server
                            .fetch_share(*user, &entry.share_fingerprint)
                            .unwrap_or_else(|e| {
                                panic!("cut {cut}: dangling reference in recovered recipe: {e}")
                            })
                    })
                    .collect();
                if recipe.entries.len() == datas.len()
                    && recipe
                        .entries
                        .iter()
                        .zip(datas)
                        .all(|(entry, data)| entry.share_fingerprint == Fingerprint::of(data))
                {
                    assert_eq!(&fetched, datas, "cut {cut}: corrupted restore");
                }
            }
            Err(_) => {
                // Pruned or never reached this prefix — consistent too.
            }
        }
    }
    // The recovered server accepts fresh traffic on top of any prefix.
    server_backup(&server, 9, b"/after-recovery", &[b"fresh share".to_vec()]);
    assert_eq!(
        server
            .fetch_share(9, &Fingerprint::of(b"fresh share"))
            .unwrap(),
        b"fresh share"
    );
}

#[test]
fn torn_journal_prefixes_recover_deterministic_edges() {
    let (backend, manifest) = journaled_workload();
    let wal_keys: Vec<String> = backend
        .list()
        .unwrap()
        .into_iter()
        .filter(|k| k.starts_with(WAL_PREFIX))
        .collect();
    assert_eq!(wal_keys.len(), 1, "workload must fit one WAL segment");
    let wal = backend.get(&wal_keys[0]).unwrap();
    // The interesting deterministic cuts: nothing, a bare length prefix, a
    // torn first record, one byte short, and the full journal.
    for cut in [0, 4, 11, wal.len() - 1, wal.len()] {
        assert_consistent_after_cut(&backend, &wal_keys[0], &wal, cut, &manifest);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 24 } else { 96 }))]
    #[test]
    fn torn_journal_prefixes_recover_a_consistent_state(cut_seed: u64) {
        let (backend, manifest) = journaled_workload();
        let wal_keys: Vec<String> = backend
            .list()
            .unwrap()
            .into_iter()
            .filter(|k| k.starts_with(WAL_PREFIX))
            .collect();
        assert_eq!(wal_keys.len(), 1, "workload must fit one WAL segment");
        let wal = backend.get(&wal_keys[0]).unwrap();
        let cut = (cut_seed % (wal.len() as u64 + 1)) as usize;
        assert_consistent_after_cut(&backend, &wal_keys[0], &wal, cut, &manifest);
    }
}

// ---------------------------------------------------------------------------
// Restart during churn.
// ---------------------------------------------------------------------------

/// Restarts servers one at a time in the middle of an 8-thread
/// backup/delete/gc churn loop (the gc_churn machinery): the system must
/// converge with byte-exact restores, and a final cold reopen from the
/// backends must still restore everything.
#[test]
fn restarting_servers_mid_churn_converges_byte_exact() {
    let threads = 8u64;
    let backends = new_backends();
    let store = CdStore::with_backends(config(), as_dyn(&backends)).unwrap();
    let barrier = Barrier::new(threads as usize + 1);

    std::thread::scope(|scope| {
        for user in 1..=threads {
            let store = store.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..CHURN_ROUNDS {
                    let mut data = payload(FILE_BYTES, 1000 + user * 100 + round as u64);
                    data.extend_from_slice(&payload(FILE_BYTES / 4, 7 + round as u64));
                    let path = format!("/u{user}/r{round}.tar");
                    store.backup(user, &path, &data).unwrap();
                    assert_eq!(store.restore(user, &path).unwrap(), data, "{path}");
                    if round > 0 {
                        let victim = format!("/u{user}/r{}.tar", round - 1);
                        assert!(store.delete(user, &victim).unwrap());
                    }
                    if user % 2 == 0 && round % 2 == 1 {
                        store.gc().unwrap();
                    }
                }
            });
        }
        // The restarter: bounce one server after another mid-traffic.
        let store = store.clone();
        let barrier = &barrier;
        scope.spawn(move || {
            barrier.wait();
            for bounce in 0..(N * 2) {
                let report = store.restart_server(bounce % N).unwrap();
                assert!(
                    !report.pruned_anything(),
                    "graceful restart lost state: {report:?}"
                );
                std::thread::yield_now();
            }
        });
    });

    // Convergence: every thread's final file restores byte-exactly.
    let last = CHURN_ROUNDS - 1;
    for user in 1..=threads {
        let mut expected = payload(FILE_BYTES, 1000 + user * 100 + last as u64);
        expected.extend_from_slice(&payload(FILE_BYTES / 4, 7 + last as u64));
        assert_eq!(
            store
                .restore(user, &format!("/u{user}/r{last}.tar"))
                .unwrap(),
            expected
        );
    }

    // And a full cold reopen from the backends agrees.
    store.flush().unwrap();
    drop(store);
    let (revived, _) = CdStore::open(config(), as_dyn(&backends)).unwrap();
    for user in 1..=threads {
        let mut expected = payload(FILE_BYTES, 1000 + user * 100 + last as u64);
        expected.extend_from_slice(&payload(FILE_BYTES / 4, 7 + last as u64));
        assert_eq!(
            revived
                .restore(user, &format!("/u{user}/r{last}.tar"))
                .unwrap(),
            expected
        );
        assert!(revived
            .delete(user, &format!("/u{user}/r{last}.tar"))
            .unwrap());
    }
    revived.gc().unwrap();
    assert_eq!(revived.stats().backend_bytes.iter().sum::<u64>(), 0);
}
