//! Delete and space-reclamation semantics, end to end: deletion releases
//! share references, reference counting protects inter-user and intra-user
//! sharing, garbage collection shrinks the physical footprint, and deletes
//! aimed at failed clouds replay on recovery instead of leaving orphans.

use cdstore_core::{CdStore, CdStoreConfig, CdStoreError, CdStoreServer};
use cdstore_crypto::Fingerprint;

fn structured_data(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i / 1000) as u8).wrapping_mul(41).wrapping_add(seed))
        .collect()
}

fn new_store() -> CdStore {
    CdStore::new(CdStoreConfig::new(4, 3).unwrap())
}

#[test]
fn restore_after_delete_returns_file_not_found() {
    let store = new_store();
    let data = structured_data(150_000, 1);
    store.backup(1, "/gone.tar", &data).unwrap();
    assert_eq!(store.restore(1, "/gone.tar").unwrap(), data);
    assert!(store.delete(1, "/gone.tar").unwrap());
    assert!(matches!(
        store.restore(1, "/gone.tar"),
        Err(CdStoreError::FileNotFound(_))
    ));
    // A second delete is a clean no-op.
    assert!(!store.delete(1, "/gone.tar").unwrap());
}

#[test]
fn fetch_share_fails_once_the_last_reference_is_released() {
    // Server-level view of the same guarantee: once a user's recipes no
    // longer reference a share, the server refuses to serve it to them.
    let server = CdStoreServer::new(0);
    let data = b"the only copy of this share".to_vec();
    let client_fp = Fingerprint::of(&data);
    let meta = cdstore_core::ShareMetadata {
        fingerprint: client_fp,
        share_size: data.len() as u32,
        secret_seq: 0,
        secret_size: data.len() as u32,
    };
    server
        .store_shares(1, &[(meta.clone(), data.clone())])
        .unwrap();
    let recipe = cdstore_core::FileRecipe {
        file_size: data.len() as u64,
        entries: vec![cdstore_core::RecipeEntry {
            share_fingerprint: client_fp,
            secret_size: data.len() as u32,
        }],
    };
    server.put_file(1, b"/f", &recipe, &[client_fp]).unwrap();
    assert_eq!(server.fetch_share(1, &client_fp).unwrap(), data);

    assert!(server.delete_file(1, b"/f").unwrap());
    assert!(matches!(
        server.fetch_share(1, &client_fp),
        Err(CdStoreError::MissingShare(_))
    ));
    assert_eq!(server.unique_shares(), 0);
    assert_eq!(server.live_share_bytes(), 0);
}

#[test]
fn inter_user_dedup_survives_one_owner_deleting() {
    let store = new_store();
    let shared = structured_data(200_000, 2);
    store.backup(1, "/alice.tar", &shared).unwrap();
    store.backup(2, "/bob.tar", &shared).unwrap();

    // Alice deletes; Bob's deduplicated references keep every share alive,
    // through a vacuum and all.
    assert!(store.delete(1, "/alice.tar").unwrap());
    store.gc().unwrap();
    assert_eq!(store.restore(2, "/bob.tar").unwrap(), shared);
    // Alice can no longer reach the content she deleted.
    assert!(store.restore(1, "/alice.tar").is_err());

    // When Bob deletes too, the shares finally die.
    assert!(store.delete(2, "/bob.tar").unwrap());
    store.gc().unwrap();
    store.with_servers(|servers| {
        for server in servers {
            assert_eq!(server.unique_shares(), 0);
        }
    });
    assert_eq!(store.stats().backend_bytes.iter().sum::<u64>(), 0);
}

#[test]
fn physical_bytes_drop_after_gc() {
    let store = new_store();
    let doomed = structured_data(500_000, 3);
    let kept = structured_data(100_000, 4);
    store.backup(1, "/doomed.tar", &doomed).unwrap();
    store.backup(1, "/kept.tar", &kept).unwrap();
    store.flush().unwrap();

    let backend_before: u64 = store.stats().backend_bytes.iter().sum();
    let live_before: u64 = store.with_servers(|s| s.iter().map(|x| x.live_share_bytes()).sum());
    assert!(backend_before > 0);

    assert!(store.delete(1, "/doomed.tar").unwrap());
    // The live index shrinks immediately on delete...
    let live_after: u64 = store.with_servers(|s| s.iter().map(|x| x.live_share_bytes()).sum());
    assert!(live_after < live_before / 3);
    // ...and the backends shrink once the vacuum runs.
    let report = store.gc().unwrap();
    assert!(report.reclaimed_bytes > 0);
    let backend_after: u64 = store.stats().backend_bytes.iter().sum();
    assert!(
        backend_after < backend_before / 3,
        "{backend_before} -> {backend_after}"
    );
    // The kept file survived the reclamation byte-exact.
    assert_eq!(store.restore(1, "/kept.tar").unwrap(), kept);
}

#[test]
fn deletes_pending_for_a_failed_cloud_replay_on_recovery() {
    let store = new_store();
    let data = structured_data(180_000, 5);
    store.backup(7, "/failover.tar", &data).unwrap();
    store.flush().unwrap();

    store.fail_cloud(2);
    assert!(store.delete(7, "/failover.tar").unwrap());
    assert!(matches!(
        store.restore(7, "/failover.tar"),
        Err(CdStoreError::FileNotFound(_))
    ));

    // The failed cloud still holds the orphaned file index entry and its
    // share references.
    let encoded = store
        .client(7)
        .unwrap()
        .encode_pathname("/failover.tar")
        .unwrap();
    store.with_servers(|servers| {
        assert!(servers[2].has_file(7, &encoded[2]));
        assert!(servers[2].unique_shares() > 0);
    });

    // Recovery replays the delete; a vacuum then empties every backend.
    store.recover_cloud(2);
    store.with_servers(|servers| {
        assert!(!servers[2].has_file(7, &encoded[2]));
        assert_eq!(servers[2].unique_shares(), 0);
    });
    store.gc().unwrap();
    for (i, bytes) in store.stats().backend_bytes.iter().enumerate() {
        assert_eq!(*bytes, 0, "cloud {i} still holds reclaimable bytes");
    }
}
