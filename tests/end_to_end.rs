//! End-to-end integration tests spanning the whole workspace: chunking,
//! convergent dispersal, two-stage deduplication, container storage, index
//! management, failure handling, and repair.

use cdstore_chunking::ChunkerConfig;
use cdstore_core::{CdStore, CdStoreConfig, CdStoreError};

fn structured_data(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i / 1000) as u8).wrapping_mul(41).wrapping_add(seed))
        .collect()
}

#[test]
fn many_files_many_users_full_lifecycle() {
    let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
    let mut originals = Vec::new();
    for user in 1..=3u64 {
        for file in 0..3usize {
            let data = structured_data(120_000 + file * 50_000, (user * 10 + file as u64) as u8);
            let path = format!("/u{user}/file-{file}.tar");
            store.backup(user, &path, &data).unwrap();
            originals.push((user, path, data));
        }
    }
    store.flush().unwrap();

    let stats = store.stats();
    assert_eq!(stats.files, 9);
    assert!(stats.dedup.logical_bytes > 0);
    assert_eq!(stats.servers.len(), 4);

    for (user, path, data) in &originals {
        assert_eq!(&store.restore(*user, path).unwrap(), data);
    }

    // Delete one file; the others remain restorable.
    assert!(store.delete(1, "/u1/file-0.tar").unwrap());
    assert!(store.restore(1, "/u1/file-0.tar").is_err());
    assert_eq!(
        store.restore(1, "/u1/file-1.tar").unwrap(),
        originals
            .iter()
            .find(|(u, p, _)| *u == 1 && p == "/u1/file-1.tar")
            .unwrap()
            .2
    );
}

#[test]
fn restore_succeeds_under_every_single_cloud_failure() {
    let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
    let data = structured_data(300_000, 9);
    store.backup(5, "/critical.tar", &data).unwrap();
    for cloud in 0..4usize {
        store.fail_cloud(cloud);
        assert_eq!(
            store.restore(5, "/critical.tar").unwrap(),
            data,
            "cloud {cloud} down"
        );
        store.recover_cloud(cloud);
    }
}

#[test]
fn restore_fails_cleanly_when_too_many_clouds_are_down() {
    let store = CdStore::new(CdStoreConfig::new(5, 3).unwrap());
    let data = structured_data(80_000, 2);
    store.backup(1, "/f", &data).unwrap();
    store.fail_cloud(0);
    store.fail_cloud(1);
    assert_eq!(store.restore(1, "/f").unwrap(), data);
    store.fail_cloud(2);
    assert!(matches!(
        store.restore(1, "/f"),
        Err(CdStoreError::NotEnoughClouds {
            needed: 3,
            available: 2
        })
    ));
}

#[test]
fn weekly_backups_accumulate_high_dedup_savings() {
    let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
    let base = structured_data(400_000, 7);
    for week in 0..5usize {
        let mut data = base.clone();
        // A small weekly change.
        let start = week * 8000;
        for b in &mut data[start..start + 4000] {
            *b = b.wrapping_add(week as u8 + 1);
        }
        store
            .backup(3, &format!("/weekly/week-{week}.tar"), &data)
            .unwrap();
    }
    let stats = store.stats();
    assert!(
        stats.dedup.intra_user_saving() > 0.7,
        "intra-user saving {}",
        stats.dedup.intra_user_saving()
    );
    assert!(stats.dedup.dedup_ratio() > 3.0);
    // Every weekly version remains restorable.
    for week in 0..5usize {
        assert!(store
            .restore(3, &format!("/weekly/week-{week}.tar"))
            .is_ok());
    }
}

#[test]
fn repair_after_permanent_cloud_loss_restores_full_redundancy() {
    let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
    let files: Vec<(u64, String, Vec<u8>)> = (0..4u64)
        .map(|i| {
            (
                i + 1,
                format!("/repair/file-{i}.tar"),
                structured_data(150_000, i as u8 + 3),
            )
        })
        .collect();
    for (user, path, data) in &files {
        store.backup(*user, path, data).unwrap();
    }
    let repaired = store.replace_and_repair_cloud(1).unwrap();
    assert_eq!(repaired, files.len());
    // After repair, any other single cloud may fail and everything restores.
    store.fail_cloud(3);
    for (user, path, data) in &files {
        assert_eq!(&store.restore(*user, path).unwrap(), data);
    }
}

#[test]
fn custom_chunker_configurations_work_end_to_end() {
    let config = CdStoreConfig::new(4, 2)
        .unwrap()
        .with_chunker(ChunkerConfig::new(512, 2048, 8192));
    let store = CdStore::new(config);
    let data = structured_data(200_000, 1);
    let report = store.backup(9, "/small-chunks.tar", &data).unwrap();
    assert!(
        report.num_secrets > 20,
        "expected many small chunks, got {}",
        report.num_secrets
    );
    assert_eq!(store.restore(9, "/small-chunks.tar").unwrap(), data);
}

#[test]
fn uploads_are_rejected_while_a_cloud_is_down() {
    let store = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
    store.fail_cloud(2);
    assert!(matches!(
        store.backup(1, "/f", b"data"),
        Err(CdStoreError::NotEnoughClouds { .. })
    ));
    store.recover_cloud(2);
    assert!(store.backup(1, "/f", &structured_data(50_000, 4)).is_ok());
}
