//! The streaming data path is byte-exact equivalent to the buffered one.
//!
//! The chunk-boundary contract (`ChunkCutter` decisions depend only on the
//! byte stream, never on `Read`-call slicing) plus the deterministic CAONT-RS
//! encoding mean a streamed backup must produce the same secrets, the same
//! shares, the same dedup accounting, and the same restored bytes as the
//! buffered two-phase `prepare`/`commit` path — for every chunking algorithm
//! and every way the input arrives. These tests pin that equivalence down,
//! and assert the acceptance property that peak live chunk/share buffers are
//! bounded by the pipeline depth, not the file size.

use std::io::Read;
use std::sync::Arc;

use cdstore_chunking::{ChunkerConfig, ChunkerKind};
use cdstore_core::{CdStore, CdStoreConfig, CdStoreError, PipelineConfig, UploadReport};
use cdstore_secretsharing::{BufferPool, SecretSharing};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Backup-like data: blocks of pseudo-random content where some blocks
/// repeat, so chunking and both dedup stages have real work to do.
fn backup_data(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let blocks: Vec<Vec<u8>> = (0..7)
        .map(|_| (0..4096).map(|_| rng.gen()).collect())
        .collect();
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let b = &blocks[rng.gen_range(0..blocks.len())];
        let take = b.len().min(len - out.len());
        out.extend_from_slice(&b[..take]);
    }
    out
}

/// Hands out the underlying bytes in reads capped at `cap` bytes, so chunk
/// boundaries see every possible slicing of the stream.
struct DribbleReader<'a> {
    data: &'a [u8],
    pos: usize,
    cap: usize,
}

impl<'a> DribbleReader<'a> {
    fn new(data: &'a [u8], cap: usize) -> Self {
        DribbleReader {
            data,
            pos: 0,
            cap: cap.max(1),
        }
    }
}

impl Read for DribbleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let take = self.cap.min(buf.len()).min(self.data.len() - self.pos);
        buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }
}

/// Fails with an I/O error after yielding `good` bytes of the data.
struct FailAfter<'a> {
    data: &'a [u8],
    pos: usize,
    good: usize,
}

impl Read for FailAfter<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.good {
            return Err(std::io::Error::other("source truncated mid-backup"));
        }
        let take = buf
            .len()
            .min(self.good - self.pos)
            .min(self.data.len() - self.pos);
        buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }
}

fn small_chunks() -> ChunkerConfig {
    ChunkerConfig::new(512, 1024, 4096)
}

fn store_with(kind: ChunkerKind) -> CdStore {
    CdStore::new(
        CdStoreConfig::new(4, 3)
            .unwrap()
            .with_chunker(small_chunks())
            .with_chunker_kind(kind),
    )
}

/// The buffered reference path: explicit two-phase `prepare` + `commit`,
/// which materialises the whole file and every share.
fn buffered_backup(store: &CdStore, user: u64, path: &str, data: &[u8]) -> UploadReport {
    let client = store.client(user).unwrap();
    let prepared = client.prepare(data).unwrap();
    store.with_servers(|servers| client.commit(servers, path, prepared).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary content, chunker, read-slicing, and pipeline read-buffer
    /// size: the streamed upload produces the same secret count and dedup
    /// accounting as the buffered two-phase path, and both restore
    /// byte-exact.
    #[test]
    fn streamed_backup_equals_buffered(
        seed in any::<u64>(),
        kind_index in 0usize..3,
        read_buffer in 1usize..5000,
    ) {
        let kind = ChunkerKind::ALL[kind_index];
        let data = backup_data(seed, 150_000 + (seed % 50_000) as usize);
        let read_cap = 1 + (seed % 7919) as usize;

        // Buffered reference deployment.
        let buffered_store = store_with(kind);
        let buffered = buffered_backup(&buffered_store, 1, "/f", &data);

        // Streamed deployment: same content arrives in dribbled reads
        // through a pipeline with an arbitrary read-buffer size.
        let streamed_store = store_with(kind);
        let client = streamed_store.client(1).unwrap();
        let config = PipelineConfig {
            read_buffer,
            ..PipelineConfig::default()
        };
        let streamed = streamed_store.with_servers(|servers| {
            client
                .upload_stream(servers, "/f", DribbleReader::new(&data, read_cap), &config)
                .unwrap()
        });

        prop_assert_eq!(streamed.num_secrets, buffered.num_secrets);
        prop_assert_eq!(streamed.dedup, buffered.dedup);
        prop_assert_eq!(&streamed.transferred_per_cloud, &buffered.transferred_per_cloud);
        prop_assert_eq!(&streamed.physical_per_cloud, &buffered.physical_per_cloud);

        // Both deployments restore the original bytes — buffered wrapper and
        // explicit streamed writer alike.
        prop_assert_eq!(buffered_store.restore(1, "/f").unwrap(), data.clone());
        let mut restored = Vec::new();
        let written = streamed_store.restore_stream(1, "/f", &mut restored).unwrap();
        prop_assert_eq!(written, data.len() as u64);
        prop_assert_eq!(restored, data);
    }

    /// Re-streaming identical content transfers zero share bytes: intra-user
    /// dedup works identically on the streamed path.
    #[test]
    fn streamed_reupload_dedups_everything(
        seed in any::<u64>(),
        kind_index in 0usize..3,
    ) {
        let kind = ChunkerKind::ALL[kind_index];
        let data = backup_data(seed, 120_000);
        let store = store_with(kind);
        let first = store.backup_stream(1, "/v1", &data[..]).unwrap();
        prop_assert!(first.dedup.transferred_share_bytes > 0);
        let second = store.backup_stream(1, "/v2", &data[..]).unwrap();
        prop_assert_eq!(second.dedup.transferred_share_bytes, 0);
        prop_assert_eq!(store.restore(1, "/v1").unwrap(), data.clone());
        prop_assert_eq!(store.restore(1, "/v2").unwrap(), data);
    }
}

/// Acceptance criterion: a streamed backup of a file several times larger
/// than the pipeline's buffer budget keeps peak live chunk/share buffers
/// bounded by the pipeline depth plus the per-cloud batches — never O(file) —
/// and restores byte-exact.
#[test]
fn streamed_backup_memory_is_bounded_by_pipeline_depth_not_file_size() {
    let (n, k) = (4usize, 3usize);
    let store = CdStore::new(
        CdStoreConfig::new(n, k)
            .unwrap()
            .with_chunker(ChunkerConfig::new(2048, 8192, 16384))
            .with_chunker_kind(ChunkerKind::FastCdc),
    );
    let client = store.client(1).unwrap();

    let pool = Arc::new(BufferPool::new());
    let config = PipelineConfig {
        encode_threads: 2,
        chunk_queue: 4,
        encoded_queue: 4,
        read_buffer: 16 * 1024,
        pool: Some(Arc::clone(&pool)),
    };
    let batch_bytes: u64 = 64 * 1024;

    // Byte budget of the pipeline: every pooled buffer holds at most one max
    // chunk (or one of its shares, which are smaller), plus the n per-cloud
    // batches. The input is >4x that.
    let max_chunk = 16 * 1024u64;
    let budget_bytes =
        config.max_live_buffers(n) as u64 * max_chunk + n as u64 * (batch_bytes + max_chunk);
    let data = backup_data(99, 8 * 1024 * 1024);
    assert!(
        (data.len() as u64) >= 4 * budget_bytes,
        "input ({}) must dwarf the buffer budget ({budget_bytes})",
        data.len()
    );

    let report = store.with_servers(|servers| {
        client
            .upload_stream_with_batch(servers, "/huge", &data[..], &config, batch_bytes)
            .unwrap()
    });
    assert!(report.num_secrets as u64 > 4 * config.max_live_secrets() as u64);

    // Buffer-count bound: the pipeline's live secrets, plus what the
    // per-cloud batches can retain (each batched share is at least a
    // min-chunk share).
    let min_share = client.scheme().total_share_size(2048) as u64 / n as u64;
    let bound = config.max_live_buffers(n) as u64 + n as u64 * (batch_bytes / min_share + 1);
    let stats = pool.stats();
    assert!(
        (stats.peak_outstanding as u64) <= bound,
        "peak live buffers {} exceeded the pipeline bound {bound}",
        stats.peak_outstanding
    );
    assert_eq!(stats.outstanding, 0, "all buffers must return to the pool");
    assert!(
        stats.reuses > 10 * stats.allocations,
        "steady state must recycle buffers (allocs={}, reuses={})",
        stats.allocations,
        stats.reuses
    );

    // And the restore is byte-exact, streamed out through a Write sink.
    let mut restored = Vec::new();
    let written = store.restore_stream(1, "/huge", &mut restored).unwrap();
    assert_eq!(written, data.len() as u64);
    assert_eq!(restored, data);
}

/// A mid-stream read failure surfaces as `CdStoreError::Io`, releases all
/// transient upload state, and a retry of the same pathname succeeds.
#[test]
fn failed_streamed_backup_leaves_no_leaked_state() {
    let store = store_with(ChunkerKind::Rabin);
    let data = backup_data(7, 400_000);
    let err = store
        .backup_stream(
            1,
            "/flaky",
            FailAfter {
                data: &data,
                pos: 0,
                good: 250_000,
            },
        )
        .expect_err("truncated source must fail the backup");
    assert!(
        matches!(err, CdStoreError::Io(_)),
        "unexpected error {err:?}"
    );
    assert!(store.restore(1, "/flaky").is_err());

    // Retry with a healthy source: the abandoned upload's transient
    // references must not block or corrupt anything.
    store.backup_stream(1, "/flaky", &data[..]).unwrap();
    assert_eq!(store.restore(1, "/flaky").unwrap(), data);

    // The abandoned shares are reclaimable: delete + gc drains the backends.
    assert!(store.delete(1, "/flaky").unwrap());
    store.gc().unwrap();
    assert_eq!(store.stats().backend_bytes.iter().sum::<u64>(), 0);
}

/// `CdStore::backup` (buffered wrapper) and `CdStore::backup_stream` land
/// identical state — a slice really is just one shape of `Read` source.
#[test]
fn wrapper_and_streaming_facade_apis_agree() {
    let data = backup_data(21, 200_000);
    let via_slice = store_with(ChunkerKind::FastCdc);
    let a = via_slice.backup(1, "/f", &data).unwrap();
    let via_stream = store_with(ChunkerKind::FastCdc);
    let b = via_stream.backup_stream(1, "/f", &data[..]).unwrap();
    assert_eq!(a.num_secrets, b.num_secrets);
    assert_eq!(a.dedup, b.dedup);
    assert_eq!(via_slice.restore(1, "/f").unwrap(), data);
    assert_eq!(via_stream.restore(1, "/f").unwrap(), data);
}
