//! Chaos harness: trace replays through CDStore deployments whose backends
//! misbehave on purpose.
//!
//! Every scenario drives real workloads (the FSL/VM synthetic traces from
//! `cdstore_workloads`) through a [`CdStore`] deployment whose clouds are
//! wrapped in [`FaultyBackend`]s — seeded, replayable fault plans injecting
//! transient errors, torn writes, outages, and slowdowns — and asserts the
//! paper's reliability claims hold under fire: byte-exact restores, k-of-n
//! reads through a single-cloud outage, bounded retries, and bounded
//! recovery. Fault schedules are written to `target/chaos/` so a CI failure
//! can be replayed locally from the artifact (see `docs/chaos.md`).
//!
//! Debug builds (tier-1 `cargo test -q`) run reduced sizes; the CI `chaos`
//! job runs the full sizes in release mode with `CHAOS_SEED` pinned.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cdstore_core::{
    CdStore, CdStoreConfig, CdStoreError, CdStoreServer, RetryPolicy, ServerTransport,
};
use cdstore_net::{LoopbackCluster, NetClientConfig};
use cdstore_storage::{
    FaultConfig, FaultPlan, FaultyBackend, MemoryBackend, StorageBackend, Window,
};
use cdstore_workloads::{FslConfig, FslWorkload, Snapshot, VmConfig, VmWorkload, Workload};

/// Seed every scenario derives its fault plans from. CI pins this via the
/// `CHAOS_SEED` environment variable so a failure names its exact schedule.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xCD5_70FE)
}

/// Whether to run the full-size workloads (release CI) or the reduced
/// tier-1 sizes (debug).
fn full_size() -> bool {
    !cfg!(debug_assertions)
}

fn fsl_snapshots(users: usize, weeks: usize, chunks: usize) -> Vec<Vec<Snapshot>> {
    FslWorkload::new(FslConfig {
        users,
        weeks,
        initial_chunks_per_user: chunks,
        ..Default::default()
    })
    .snapshots()
}

fn vm_snapshots(users: usize, weeks: usize, chunks: usize) -> Vec<Vec<Snapshot>> {
    VmWorkload::new(VmConfig {
        users,
        weeks,
        chunks_per_image: chunks,
        ..Default::default()
    })
    .snapshots()
}

/// Builds `n` fault-wrapped in-memory clouds from one scenario seed: every
/// cloud gets its own deterministic plan (seed offset by cloud index).
fn faulty_clouds(
    n: usize,
    seed: u64,
    configure: impl Fn(FaultConfig) -> FaultConfig,
) -> (Vec<Arc<FaultyBackend>>, Vec<Arc<FaultPlan>>) {
    let mut backends = Vec::with_capacity(n);
    let mut plans = Vec::with_capacity(n);
    for cloud in 0..n {
        let plan = Arc::new(FaultPlan::new(configure(FaultConfig::clean(
            seed.wrapping_add(cloud as u64),
        ))));
        backends.push(Arc::new(FaultyBackend::new(
            Arc::new(MemoryBackend::new()),
            Arc::clone(&plan),
        )));
        plans.push(plan);
    }
    (backends, plans)
}

/// Upcasts the concrete fault-wrapped clouds to the trait objects the
/// deployment constructors take.
fn as_backends(clouds: &[Arc<FaultyBackend>]) -> Vec<Arc<dyn StorageBackend>> {
    clouds
        .iter()
        .map(|b| Arc::clone(b) as Arc<dyn StorageBackend>)
        .collect()
}

/// Writes the per-cloud fault schedules where CI uploads them from on
/// failure (best-effort; the suite must not fail on log I/O).
fn dump_schedules(scenario: &str, plans: &[Arc<FaultPlan>]) {
    let dir = std::path::Path::new("target/chaos");
    let _ = std::fs::create_dir_all(dir);
    for (cloud, plan) in plans.iter().enumerate() {
        let _ = std::fs::write(
            dir.join(format!("{scenario}-cloud{cloud}.log")),
            plan.render_schedule(),
        );
    }
}

/// Replays every snapshot through `store.backup_chunks`, panicking with the
/// scenario name on any failure.
fn replay<T: ServerTransport>(store: &CdStore<T>, scenario: &str, snapshots: &[Vec<Snapshot>]) {
    for week in snapshots {
        for snapshot in week {
            store
                .backup_chunks(snapshot.user, &snapshot.pathname(), &snapshot.materialize())
                .unwrap_or_else(|e| panic!("{scenario}: backup failed: {e}"));
        }
    }
}

/// Asserts every user's latest snapshot restores byte-exactly.
fn assert_restores<T: ServerTransport>(
    store: &CdStore<T>,
    scenario: &str,
    snapshots: &[Vec<Snapshot>],
) {
    for snapshot in snapshots.last().expect("non-empty workload") {
        let expected: Vec<u8> = snapshot.materialize().concat();
        let restored = store
            .restore(snapshot.user, &snapshot.pathname())
            .unwrap_or_else(|e| panic!("{scenario}: restore failed: {e}"));
        assert_eq!(restored, expected, "{scenario}: restore mismatch");
    }
}

/// Degraded clouds — every backend injecting transient errors and torn
/// writes — slow the workload down but never fail it: retries absorb every
/// fault, restores stay byte-exact, and dedup keeps working.
#[test]
fn trace_replay_survives_degraded_clouds() {
    let seed = chaos_seed();
    let (clouds, plans) = faulty_clouds(4, seed, |c| {
        c.with_error_rate(0.05).with_torn_write_rate(0.03)
    });
    let config = CdStoreConfig::new(4, 3)
        .unwrap()
        .with_retry(RetryPolicy::with_attempts(6));
    let store = CdStore::with_backends(config, as_backends(&clouds)).unwrap();

    let (users, weeks, chunks) = if full_size() { (4, 4, 120) } else { (2, 2, 40) };
    let snapshots = fsl_snapshots(users, weeks, chunks);
    replay(&store, "degraded", &snapshots);
    store.flush().unwrap();
    assert_restores(&store, "degraded", &snapshots);
    dump_schedules("degraded", &plans);

    // The run was genuinely hostile: faults were injected on every cloud.
    for (cloud, plan) in plans.iter().enumerate() {
        assert!(
            !plan.schedule().is_empty(),
            "cloud {cloud} injected no faults — the scenario tested nothing"
        );
    }
    // Dedup survived the chaos: intra-user dedup still removes a duplicate
    // re-upload entirely, and inter-user dedup kept physical below logical.
    let before = store.stats().dedup;
    let last = &snapshots.last().unwrap()[0];
    store
        .backup_chunks(last.user, "/chaos/duplicate", &last.materialize())
        .unwrap();
    let after = store.stats().dedup;
    assert_eq!(
        after.transferred_share_bytes, before.transferred_share_bytes,
        "duplicate re-upload must transfer nothing"
    );
    assert!(after.physical_share_bytes <= after.transferred_share_bytes);
}

/// A full single-cloud outage: restores keep succeeding k-of-n (failing
/// over to a spare cloud even though nobody flagged the cloud down),
/// backups fail fast with bounded retries, and the system recovers as soon
/// as the cloud returns.
#[test]
fn single_cloud_outage_keeps_k_of_n_reads_alive() {
    let seed = chaos_seed().wrapping_add(100);
    let (clouds, plans) = faulty_clouds(4, seed, |c| c);
    let retry = RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
    };
    let config = CdStoreConfig::new(4, 3).unwrap().with_retry(retry);
    let store = CdStore::with_backends(config, as_backends(&clouds)).unwrap();

    let size = if full_size() { 400_000 } else { 80_000 };
    let data: Vec<u8> = (0..size)
        .map(|i| ((i / 700) as u8).wrapping_mul(13).wrapping_add(7))
        .collect();
    store.backup(1, "/outage/a.tar", &data).unwrap();
    store.flush().unwrap();
    // Restart every server so the container caches are cold: reads must go
    // to the (about to misbehave) backends, not be absorbed by the LRU.
    for i in 0..4 {
        store.restart_server(i).unwrap();
    }

    // Cloud 0 goes dark at the backend level; the façade still believes all
    // four clouds are up, so the restore's first choice includes cloud 0.
    plans[0].set_outage(true);
    let events_before = plans[0].schedule().len();
    assert_eq!(
        store.restore(1, "/outage/a.tar").unwrap(),
        data,
        "restore must fail over to the spare cloud"
    );
    assert!(
        plans[0].schedule().len() > events_before,
        "restore never hit the dead cloud — failover was not exercised"
    );

    // New data buffers server-side, so the backup itself succeeds; it is
    // the flush that must push bytes through the dead cloud and fail — with
    // bounded retries, not a hang: at most max_attempts per server, each
    // backoff capped at 4 ms.
    let fresh: Vec<u8> = (0..size)
        .map(|i| ((i / 650) as u8).wrapping_mul(31).wrapping_add(11))
        .collect();
    store.backup(1, "/outage/b.tar", &fresh).unwrap();
    let started = Instant::now();
    let err = store
        .flush()
        .expect_err("flushing through a dead cloud must fail");
    assert!(
        matches!(err, CdStoreError::Storage(_) | CdStoreError::Remote(_)),
        "unexpected error {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "retries must be bounded, took {:?}",
        started.elapsed()
    );

    // The cloud comes back: the failed seal retries cleanly (a failed seal
    // reinstates the builder) and both files restore byte-exactly.
    plans[0].set_outage(false);
    store.flush().unwrap();
    assert_eq!(store.restore(1, "/outage/a.tar").unwrap(), data);
    assert_eq!(store.restore(1, "/outage/b.tar").unwrap(), fresh);
    dump_schedules("outage", &plans);
}

/// Façade-visible outages hit mid-trace, a different cloud each week:
/// backups quiesce around the windows, mid-outage restores keep succeeding
/// k-of-n, pending deletes replay on recovery, and every file restores
/// byte-exactly at the end.
#[test]
fn outage_windows_and_failover_during_churn() {
    let seed = chaos_seed().wrapping_add(200);
    let (clouds, plans) = faulty_clouds(4, seed, |c| c.with_error_rate(0.02));
    let config = CdStoreConfig::new(4, 3)
        .unwrap()
        .with_retry(RetryPolicy::with_attempts(6));
    let store = CdStore::with_backends(config, as_backends(&clouds)).unwrap();

    let (users, weeks, chunks) = if full_size() { (3, 4, 100) } else { (2, 2, 36) };
    let snapshots = fsl_snapshots(users, weeks, chunks);
    for (week_no, week) in snapshots.iter().enumerate() {
        if week_no > 0 {
            // Take one cloud fully down — backend outage plus façade flag —
            // and verify week-0 data still restores from the other three.
            let victim = week_no % 4;
            store.fail_cloud(victim);
            plans[victim].set_outage(true);
            let first = &snapshots[0][0];
            assert_eq!(
                store.restore(first.user, &first.pathname()).unwrap(),
                first.materialize().concat()
            );
            plans[victim].set_outage(false);
            store.recover_cloud(victim);
        }
        for snapshot in week {
            store
                .backup_chunks(snapshot.user, &snapshot.pathname(), &snapshot.materialize())
                .unwrap_or_else(|e| panic!("windows: backup failed: {e}"));
        }
    }
    store.flush().unwrap();
    assert_restores(&store, "windows", &snapshots);
    dump_schedules("windows", &plans);
}

/// Graceful server restarts injected mid-churn while backends stay flaky:
/// every restart recovers from backend-only state within a bounded time and
/// the workload never notices.
#[test]
fn mid_churn_server_restarts_recover_bounded() {
    let seed = chaos_seed().wrapping_add(300);
    let (clouds, plans) = faulty_clouds(4, seed, |c| {
        c.with_error_rate(0.02).with_torn_write_rate(0.02)
    });
    let config = CdStoreConfig::new(4, 3)
        .unwrap()
        .with_retry(RetryPolicy::with_attempts(6));
    let store = CdStore::with_backends(config, as_backends(&clouds)).unwrap();

    let (users, weeks, chunks) = if full_size() { (3, 3, 100) } else { (2, 2, 36) };
    let snapshots = fsl_snapshots(users, weeks, chunks);
    let mut restarts = 0usize;
    for (week_no, week) in snapshots.iter().enumerate() {
        for (i, snapshot) in week.iter().enumerate() {
            store
                .backup_chunks(snapshot.user, &snapshot.pathname(), &snapshot.materialize())
                .unwrap_or_else(|e| panic!("restart: backup failed: {e}"));
            if i == week.len() / 2 {
                // Restart a rotating server in the middle of every week.
                // The restart's own backend traffic sees the same injected
                // faults as client traffic, so ride it on the retry policy:
                // a transient fault mid-seal or mid-recovery is ridden out,
                // not fatal.
                let victim = week_no % 4;
                let started = Instant::now();
                let report = config
                    .retry
                    .run(|_| store.restart_server(victim))
                    .unwrap_or_else(|e| panic!("restart of server {victim} failed: {e}"));
                assert!(
                    started.elapsed() < Duration::from_secs(30),
                    "recovery took {:?}",
                    started.elapsed()
                );
                assert!(report.containers_scanned > 0);
                restarts += 1;
            }
        }
    }
    assert!(restarts >= weeks);
    store.flush().unwrap();
    assert_restores(&store, "restart", &snapshots);
    dump_schedules("restart", &plans);
}

/// Crash-style recovery under fire: the deployment is dropped wholesale and
/// reopened from the bytes the faulty backends happened to persist —
/// including any torn container prefix a retry abandoned mid-flight — and
/// every flushed file restores.
#[test]
fn crash_reopen_from_faulty_backends() {
    let seed = chaos_seed().wrapping_add(400);
    let (clouds, plans) = faulty_clouds(4, seed, |c| {
        c.with_error_rate(0.03).with_torn_write_rate(0.05)
    });
    let config = CdStoreConfig::new(4, 3)
        .unwrap()
        .with_retry(RetryPolicy::with_attempts(8));
    let store = CdStore::with_backends(config, as_backends(&clouds)).unwrap();

    let (users, weeks, chunks) = if full_size() { (3, 3, 90) } else { (2, 2, 30) };
    let snapshots = fsl_snapshots(users, weeks, chunks);
    replay(&store, "crash", &snapshots);
    store.flush().unwrap();
    drop(store);

    // Reopen from the persisted state, through the clean inner view: the
    // clouds have "recovered", but whatever garbage the fault plans caused
    // to be written is still there for recovery to prune.
    let inner: Vec<Arc<dyn StorageBackend>> = clouds.iter().map(|b| b.inner()).collect();
    let started = Instant::now();
    let (reopened, reports) = CdStore::open(config, inner).unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "crash recovery took {:?}",
        started.elapsed()
    );
    assert_eq!(reports.len(), 4);
    assert!(reports.iter().all(|r| r.containers_scanned > 0));
    assert_restores(&reopened, "crash", &snapshots);
    dump_schedules("crash", &plans);
}

/// The same chaos over real TCP, on the VM trace: a networked deployment on
/// fault-injecting backends, with a wire-server crash-restart injected
/// between weeks. Clients ride out the dropped connections through retry,
/// and restores stay byte-exact end to end.
#[test]
fn networked_chaos_with_crash_restart() {
    let seed = chaos_seed().wrapping_add(500);
    let (clouds, plans) = faulty_clouds(4, seed, |c| c.with_error_rate(0.01));
    let cores: Vec<Arc<CdStoreServer>> = clouds
        .iter()
        .enumerate()
        .map(|(i, b)| {
            Arc::new(CdStoreServer::with_backend(
                i,
                Arc::clone(b) as Arc<dyn StorageBackend>,
            ))
        })
        .collect();
    let mut cluster = LoopbackCluster::spawn_with_servers(cores).unwrap();
    let config = CdStoreConfig::new(4, 3)
        .unwrap()
        .with_retry(RetryPolicy::with_attempts(6));
    let store = cluster.store(config, NetClientConfig::default()).unwrap();

    let (users, weeks, chunks) = if full_size() { (3, 3, 90) } else { (2, 2, 30) };
    let snapshots = vm_snapshots(users, weeks, chunks);
    for (week_no, week) in snapshots.iter().enumerate() {
        for snapshot in week {
            store
                .backup_chunks(snapshot.user, &snapshot.pathname(), &snapshot.materialize())
                .unwrap_or_else(|e| panic!("net-chaos: backup failed: {e}"));
        }
        // Crash-restart a rotating wire server between weeks: connections
        // drop, the server recovers from backend-only state, and the next
        // week's traffic reconnects to the same address. Flush first so the
        // crash tears no buffered shares away (unflushed-tail recovery is
        // exercised by `crash_reopen_from_faulty_backends`).
        store.flush().unwrap();
        let victim = week_no % 4;
        config
            .retry
            .run(|_| cluster.restart(victim))
            .unwrap_or_else(|e| panic!("net-chaos: restart of {victim} failed: {e}"));
    }
    assert_restores(&store, "net-chaos", &snapshots);
    // The wire path saw injected faults too.
    assert!(plans.iter().any(|p| !p.schedule().is_empty()));
    dump_schedules("net-chaos", &plans);
}

/// Determinism: two runs of the same chaotic workload from the same seed
/// produce identical fault schedules and identical final backend state —
/// the property that makes a CI chaos failure replayable from its logged
/// seed.
#[test]
fn same_seed_chaos_runs_are_identical() {
    let run = |seed: u64| {
        let (clouds, plans) = faulty_clouds(4, seed, |c| {
            c.with_error_rate(0.04)
                .with_torn_write_rate(0.03)
                .with_outage(Window::new(60, 90))
        });
        let config = CdStoreConfig::new(4, 3)
            .unwrap()
            .with_retry(RetryPolicy::with_attempts(8));
        let store = CdStore::with_backends(config, as_backends(&clouds)).unwrap();
        let snapshots = fsl_snapshots(2, 2, if full_size() { 60 } else { 30 });
        replay(&store, "determinism", &snapshots);
        store.flush().unwrap();
        assert_restores(&store, "determinism", &snapshots);

        // Fault schedules plus a full content snapshot of every backend,
        // read through the clean inner view so the snapshot itself neither
        // fails nor advances the fault clock.
        let schedules: Vec<_> = plans.iter().map(|p| p.schedule()).collect();
        let state: Vec<Vec<(String, Vec<u8>)>> = clouds
            .iter()
            .map(|b| {
                let inner = b.inner();
                let mut keys = inner.list().unwrap();
                keys.sort();
                keys.into_iter()
                    .map(|k| {
                        let v = inner.get(&k).unwrap();
                        (k, v)
                    })
                    .collect()
            })
            .collect();
        (schedules, state)
    };

    let seed = chaos_seed().wrapping_add(600);
    let (schedules_a, state_a) = run(seed);
    let (schedules_b, state_b) = run(seed);
    assert!(
        schedules_a.iter().any(|s| !s.is_empty()),
        "no faults injected — determinism test tested nothing"
    );
    assert_eq!(
        schedules_a, schedules_b,
        "fault schedules must be identical"
    );
    assert_eq!(state_a, state_b, "final backend state must be identical");

    // A different seed must genuinely change the schedule.
    let (schedules_c, _) = run(seed + 1);
    assert_ne!(schedules_a, schedules_c);
}
